"""Command-line interface: ``python -m repro <command>``.

Commands
--------
report [--fast] [--jobs N] [--no-cache] [--cache-dir DIR] [--timeout S]
       [--retries N] [--inject-failure BENCH] [--telemetry OUT.jsonl]
       [--status PATH] [--serve PORT] [--prom PATH] [--sites]
    Regenerate every table/figure of the paper (EXPERIMENTS.md content).
    Runs per-benchmark jobs through the fault-tolerant runner
    (repro.exec): ``--jobs N`` fans out across worker processes, the
    checkpoint cache makes interrupted runs resume, and failed jobs
    degrade to FAILED table rows plus a non-zero exit.  Workers ship
    their telemetry back with each result, so the merged counters match
    a serial run.  ``--status`` republishes live progress as JSON,
    ``--serve`` exposes /metrics + /status over HTTP during the run,
    ``--prom`` writes a final Prometheus snapshot, and ``--sites``
    prints the merged hot-site attribution table.
experiment NAME [--scale S]
    Run one experiment: sec62, fig6, fig7, fig8, table1, fig9, fig10,
    fig11, ablations.
check PROGRAM_KIND [--seeds N] [--json] [--telemetry OUT.jsonl]
    Quick demos on built-in programs: ``racy`` / ``war`` / ``torn``.
bench NAME [--scale S] [--seed K] [--racy] [--json] [--telemetry OUT.jsonl]
    Run one workload model under full CLEAN and print its summary.
profile NAME [--scale S] [--seed K] [--format text|json|prom] [--sites]
        [--serve PORT] [--telemetry OUT.jsonl]
    Run one workload under the full stack with the telemetry monitor
    attached and dump every runtime/detector counter.  The special
    name ``report`` profiles the fast report's job sweep instead,
    surfacing the ``runner.*`` counters (``--jobs N`` to fan out) and
    the ``clean.*`` counters merged back from the workers.  ``--sites``
    adds the hot-site attribution tables, ``--serve`` exposes /metrics
    over HTTP during the run, and ``--format prom`` emits the final
    snapshot as Prometheus text.
trace NAME OUT.jsonl [--scale S] [--seed K] [--racy]
    Record a benchmark's access trace to a file (record-only, so racy
    variants capture the race for offline analysis).
analyze TRACE [--mode scalar|batch|sharded] [--shards N] [--jobs N]
        [--salvage] [--hot-sites K] [--json]
    Race-analyze a recorded trace offline: the vectorized check_block
    batch path by default, or sharded across worker processes; all
    modes report identical verdicts, racing pairs and clean.* counters.
    ``--hot-sites K`` ranks the K most-accessed shared addresses.
    Exits 1 when a race is found.
serve [--host H] [--port P] [--workers N] [--queue-size N] [--quota T]
      [--mode batch|scalar] [--spool DIR] [--for SECONDS]
      [--sample-interval S] [--retention N] [--slo CONFIG]
      [--no-collector]
    Run the race-checking ingestion daemon: clients POST binary traces
    to /submit (CRC-validated on ingest) and poll /result/<id> or
    /report/<id> for verdicts; a bounded queue sheds load with 429 +
    Retry-After, per-tenant token quotas gate admission, and /metrics
    + /status expose the service counters live (fleet totals plus
    per-tenant ``{tenant="..."}`` series).  A collector thread samples
    every counter into ring buffers exposed at /timeseries, the SLO
    burn-rate engine serves /alerts, and /dashboard renders the
    self-contained HTML fleet dashboard.  See docs/service.md.
slo [--config FILE] [--timeseries FILE] [--json]
    Evaluate SLO burn-rate alerts offline from a scraped /timeseries
    artifact — same engine, same verdicts as the live /alerts endpoint.
    ``--config`` loads declarative objectives (JSON; default: the
    built-in availability / latency-p99 / shed-rate set).  Exits 1
    when any objective is firing.
simulate TRACE.jsonl [--mode clean|epoch1|epoch4] [--unit clean|precise]
         [--telemetry OUT.jsonl]
    Replay a recorded trace on the hardware simulator.
chaos [--seed N] [--faults KINDS] [--jobs N] [--watchdog S]
      [--workdir DIR] [--report PATH] [--forensics DIR] [--json]
    Inject faults (trace-bitflip, checkpoint-truncate, worker-crash,
    worker-hang, monitor-raise) under a seeded plan and assert the
    recovery invariants end to end: every fault detected and survived,
    no hang, surviving results deterministic across two passes.  Exits
    non-zero only if an invariant fails (see docs/robustness.md).
    ``--forensics DIR`` attaches a full forensics bundle per chaos job.
forensics NAME [--racy] [--scale S] [--seed K] [--recovery MODE]
          [--out DIR] [--validate] [--json]
    Run one workload under CLEAN with the execution flight recorder on
    and write the forensics bundle: a Perfetto-loadable Chrome-trace
    JSON, a happens-before graph (DOT + JSON) with the racing pair
    highlighted, and a self-contained HTML race report.  All artifacts
    use logical timestamps, so re-running the command produces
    byte-identical files.  ``--validate`` re-checks the emitted Chrome
    trace against the trace-event schema and fails loudly on drift.
list
    List the modelled benchmarks and their characteristics.

``--json`` prints a machine-readable result on stdout (same exit code);
``--telemetry`` writes a JSONL timeline of spans plus a final metrics
snapshot (see docs/observability.md for the schema).
"""

from __future__ import annotations

import argparse
import json

#: Schema major stamped into every ``--format json`` profile payload.
PROFILE_FORMAT_VERSION = 1


def _telemetry_session(args: argparse.Namespace):
    """(registry, tracer, exporter) for a command run; exporter may be None."""
    from .obs import JsonlExporter, MetricsRegistry, Tracer

    exporter = None
    if getattr(args, "telemetry", None):
        exporter = JsonlExporter(args.telemetry)
    return MetricsRegistry(), Tracer(exporter), exporter


def _close_telemetry(exporter, registry) -> None:
    if exporter is not None:
        exporter.export_metrics(registry)
        exporter.close()


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments import report

    argv = []
    if args.fast:
        argv.append("--fast")
    if args.telemetry:
        argv.extend(["--telemetry", args.telemetry])
    argv.extend(["--jobs", str(args.jobs)])
    if args.no_cache:
        argv.append("--no-cache")
    argv.extend(["--cache-dir", args.cache_dir])
    if args.timeout is not None:
        argv.extend(["--timeout", str(args.timeout)])
    argv.extend(["--retries", str(args.retries)])
    if args.inject_failure:
        argv.extend(["--inject-failure", args.inject_failure])
    if args.status:
        argv.extend(["--status", args.status])
    if args.serve is not None:
        argv.extend(["--serve", str(args.serve)])
    if args.prom:
        argv.extend(["--prom", args.prom])
    if args.sites:
        argv.append("--sites")
    if args.forensics:
        argv.extend(["--forensics", args.forensics])
    return report.main(argv)


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import (
        ablations,
        fig6_software,
        fig7_freq,
        fig8_vector,
        fig9_hardware,
        fig10_breakdown,
        fig11_epochsize,
        sec62_detection,
        table1_rollover,
    )

    table = {
        "sec62": sec62_detection,
        "fig6": fig6_software,
        "fig7": fig7_freq,
        "fig8": fig8_vector,
        "table1": table1_rollover,
        "fig9": fig9_hardware,
        "fig10": fig10_breakdown,
        "fig11": fig11_epochsize,
        "ablations": ablations,
    }
    module = table.get(args.name)
    if module is None:
        print(f"unknown experiment {args.name!r}; one of {sorted(table)}")
        return 2
    module.main()
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .clean import run_clean
    from .obs import TelemetryMonitor
    from .runtime import RandomPolicy
    from .workloads import spilled_switch_program, torn_write_program

    if args.kind == "torn":
        make = torn_write_program
    elif args.kind == "racy":
        make = spilled_switch_program
    else:
        print(f"unknown program kind {args.kind!r}; one of racy, torn")
        return 2
    registry, tracer, exporter = _telemetry_session(args)
    per_seed = []
    with tracer.span("check", kind=args.kind, seeds=args.seeds):
        for seed in range(args.seeds):
            telemetry = TelemetryMonitor(registry=registry)
            recorder = None
            if args.forensics:
                from .obs import TimelineRecorder

                recorder = TimelineRecorder(label=f"{args.kind}_seed{seed}")
            with tracer.span("check.seed", seed=seed) as span:
                result = run_clean(
                    make(),
                    policy=RandomPolicy(seed),
                    registry=registry,
                    extra_monitors=[telemetry],
                    timeline=recorder,
                )
                span.set("race", str(result.race) if result.race else None)
            entry = {"seed": seed,
                     "race": str(result.race) if result.race else None}
            if recorder is not None:
                from .obs import write_forensics

                entry["forensics"] = write_forensics(
                    args.forensics, recorder.label, recorder.to_payload()
                )
            per_seed.append(entry)
    stopped = sum(1 for entry in per_seed if entry["race"] is not None)
    _close_telemetry(exporter, registry)
    if args.json:
        print(json.dumps({
            "kind": args.kind,
            "seeds": args.seeds,
            "stopped": stopped,
            "runs": per_seed,
            "metrics": registry.snapshot(),
        }, sort_keys=True))
        return 0
    for entry in per_seed:
        if entry["race"] is not None:
            print(f"seed {entry['seed']}: {entry['race']}")
        else:
            print(f"seed {entry['seed']}: completed")
    print(f"\nstopped {stopped}/{args.seeds} schedules")
    if args.forensics:
        print(f"forensics bundles written under {args.forensics}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .swclean import run_software_clean
    from .workloads import get_benchmark

    spec = get_benchmark(args.name)
    registry, tracer, exporter = _telemetry_session(args)
    if args.racy:
        from .clean import run_clean
        from .obs import TelemetryMonitor
        from .runtime import RandomPolicy
        from .workloads import build_program

        with tracer.span("bench.racy", benchmark=spec.name, seed=args.seed):
            result = run_clean(
                build_program(spec, scale=args.scale, racy=True, seed=args.seed),
                policy=RandomPolicy(args.seed),
                max_threads=24,
                registry=registry,
                extra_monitors=[TelemetryMonitor(registry=registry)],
            )
        _close_telemetry(exporter, registry)
        if args.json:
            print(json.dumps({
                "benchmark": spec.name,
                "racy": True,
                "race": str(result.race) if result.race else None,
                "metrics": registry.snapshot(),
            }, sort_keys=True))
            return 0
        print(f"{spec.name} (racy variant): race = {result.race}")
        return 0
    with tracer.span("bench", benchmark=spec.name, scale=args.scale):
        run = run_software_clean(
            spec, scale=args.scale, seed=args.seed, registry=registry
        )
    _close_telemetry(exporter, registry)
    if args.json:
        print(json.dumps({
            "benchmark": run.benchmark,
            "suite": spec.suite,
            "style": spec.style,
            "scale": run.scale,
            "t0_instructions": run.t0,
            "shared_accesses": run.shared_accesses,
            "shared_access_density": run.shared_access_density,
            "slowdown_detsync": run.slowdown_detsync,
            "slowdown_detection": run.slowdown_detection,
            "slowdown_full": run.slowdown_full,
            "rollovers": run.rollovers,
            "metrics": registry.snapshot(),
        }, sort_keys=True))
        return 0
    print(f"benchmark            {run.benchmark} ({spec.suite}, {spec.style})")
    print(f"scale                {run.scale}")
    print(f"baseline time        {run.t0:.0f} instructions")
    print(f"shared accesses      {run.shared_accesses}")
    print(f"shared density       {run.shared_access_density:.3f} /instr")
    print(f"det-sync slowdown    {run.slowdown_detsync:.2f}x")
    print(f"detection slowdown   {run.slowdown_detection:.2f}x")
    print(f"full CLEAN slowdown  {run.slowdown_full:.2f}x")
    print(f"rollovers            {run.rollovers}")
    return 0


def _profile_format(args: argparse.Namespace) -> str:
    """Resolve ``--format``; ``--json`` stays as a back-compat alias."""
    if getattr(args, "format", None):
        return args.format
    return "json" if getattr(args, "json", False) else "text"


def _cmd_profile(args: argparse.Namespace) -> int:
    if args.name == "report":
        return _cmd_profile_report(args)
    from .clean import clean_stack
    from .determinism.counters import PreciseCounter
    from .obs import (
        SiteProfiler,
        TelemetryMonitor,
        TelemetryServer,
        render_prom,
        telemetry_scope,
    )
    from .runtime import RoundRobinPolicy
    from .workloads import build_program, get_benchmark

    fmt = _profile_format(args)
    spec = get_benchmark(args.name)
    registry, tracer, exporter = _telemetry_session(args)
    server = None
    if args.serve is not None:
        server = TelemetryServer(registry=registry, port=args.serve)
        server.start()
        print(f"[serving] http://127.0.0.1:{server.port}/metrics", flush=True)
    profiler = SiteProfiler() if args.sites else None
    program = build_program(spec, scale=args.scale, racy=False, seed=args.seed)
    # The scope makes the profiler ambient, so the CleanMonitor built by
    # clean_stack picks it up without signature changes.
    try:
        with telemetry_scope(registry=registry, tracer=tracer, sites=profiler):
            monitors, _clean, _gate = clean_stack(
                registry=registry, max_threads=24
            )
            monitors.append(TelemetryMonitor(registry=registry, tracer=tracer))
            with tracer.span("profile", benchmark=spec.name, scale=args.scale):
                result = program.run(
                    policy=RoundRobinPolicy(),
                    monitors=monitors,
                    max_threads=24,
                    counter_cost=PreciseCounter(),
                )
        _close_telemetry(exporter, registry)
    finally:
        # Always through finally: an exception mid-run must not leak the
        # bound socket and its daemon thread (stop() is idempotent).
        if server is not None:
            server.stop()
    if fmt == "json":
        payload = {
            "format": PROFILE_FORMAT_VERSION,
            "benchmark": spec.name,
            "scale": args.scale,
            "race": str(result.race) if result.race else None,
            "metrics": registry.snapshot(),
        }
        if profiler is not None:
            payload["sites"] = profiler.to_payload()
        print(json.dumps(payload, sort_keys=True))
        return 0
    if fmt == "prom":
        print(render_prom(registry), end="")
        return 0
    print(f"== telemetry profile: {spec.name} (scale={args.scale}) ==\n")
    print(registry.render())
    if profiler is not None:
        print()
        print(profiler.render())
    if result.race is not None:
        print(f"\nrace: {result.race}")
    return 0


def _cmd_profile_report(args: argparse.Namespace) -> int:
    """``profile report``: the fast report through a job runner, then
    every counter — the ``runner.*`` family shows the sweep's shape
    (submitted / executed / cache hits / retries / failures and the
    wall/CPU seconds spent in jobs), and the merged worker telemetry
    surfaces the ``clean.*`` detector counters."""
    from .exec import JobRunner
    from .experiments.report import run_all
    from .obs import TelemetryServer, render_prom

    fmt = _profile_format(args)
    registry, tracer, exporter = _telemetry_session(args)
    runner = JobRunner(
        workers=getattr(args, "jobs", 1),
        registry=registry,
        tracer=tracer,
        profile_sites=args.sites,
    )
    server = None
    if args.serve is not None:
        server = TelemetryServer(
            registry=registry,
            status_fn=runner.status_snapshot,
            port=args.serve,
        )
        server.start()
        print(f"[serving] http://127.0.0.1:{server.port}/metrics "
              f"and /status", flush=True)
    try:
        with tracer.span("profile.report", jobs=runner.workers):
            results = run_all(fast=True, tracer=tracer, runner=runner)
    finally:
        if server is not None:
            server.stop()
    _close_telemetry(exporter, registry)
    if fmt == "json":
        payload = {
            "format": PROFILE_FORMAT_VERSION,
            "experiments": [r.experiment for r in results],
            "runner": runner.stats,
            "metrics": registry.snapshot(),
        }
        if runner.sites is not None:
            payload["sites"] = runner.sites.to_payload()
        print(json.dumps(payload, sort_keys=True))
        return 0
    if fmt == "prom":
        print(render_prom(registry), end="")
        return 0
    print(f"== telemetry profile: report (jobs={runner.workers}) ==\n")
    print(registry.render())
    if runner.sites is not None:
        print()
        print(runner.sites.render())
    print(f"\n[runner] {runner.summary()}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .experiments.traces import record_trace
    from .workloads import get_benchmark

    trace = record_trace(
        get_benchmark(args.name), scale=args.scale, seed=args.seed,
        racy=args.racy,
    )
    trace.save(args.out)
    print(
        f"wrote {trace.total_events} events "
        f"({trace.shared_accesses()} shared accesses, "
        f"{len(trace.thread_ids())} threads) to {args.out}"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import analyze_trace

    report = analyze_trace(
        args.trace,
        mode=args.mode,
        shards=args.shards,
        workers=args.jobs,
        salvage=args.salvage,
        hot_sites=args.hot_sites,
    )
    if args.json:
        print(json.dumps(report.to_payload(), sort_keys=True))
        return 1 if report.racy else 0
    print(
        f"analyzed {report.accesses} accesses / {report.syncs} syncs "
        f"across {report.threads} threads ({report.mode} mode"
        + (f", {report.shards} shards" if report.shards else "")
        + ")"
    )
    if report.racy:
        race = report.race
        where = (
            f" at access #{race['position']}"
            if race.get("position") is not None
            else ""
        )
        print(
            f"RACE: {race['kind']} on {race['address']:#x} "
            f"(tid {race['accessing_tid']} vs writer "
            f"tid {race['prior_writer_tid']}@{race['prior_writer_clock']})"
            + where
        )
    else:
        print("no race found")
    checks = report.counters.get("clean.checks", 0)
    print(f"  checks: {checks:.0f}  "
          f"(counters: {len(report.counters)} clean.* totals)")
    if report.hot_sites:
        print(f"hot sites (top {len(report.hot_sites)} by shared accesses):")
        print("  address       accesses  reads  writes  threads")
        for site in report.hot_sites:
            mark = "  <- racy" if site["racy"] else ""
            print(
                f"  {site['address']:#12x}  {site['accesses']:8d}  "
                f"{site['reads']:5d}  {site['writes']:6d}  "
                f"{site['threads']:7d}{mark}"
            )
    return 1 if report.racy else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import tempfile
    import time

    from .obs import load_slo_config
    from .service import RaceCheckService, ServeDaemon, SubmissionStore

    journal = args.journal if args.journal is not None else not args.no_journal

    if args.recover_only:
        # Dry run: replay the journal against the spool and report what
        # a real boot would do, touching nothing (the journal keeps its
        # torn tail, lost traces stay on disk).
        if not args.spool:
            print("repro serve --recover-only requires --spool", flush=True)
            return 2
        store = SubmissionStore(args.spool, journal=journal)
        report = store.recover(dry_run=True)
        store.close()
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if not report["lost"] else 1

    registry, tracer, exporter = _telemetry_session(args)
    slos = load_slo_config(args.slo) if args.slo else None
    spool = args.spool or tempfile.mkdtemp(prefix="repro-serve-")
    service = RaceCheckService(
        spool=spool,
        workers=args.workers,
        queue_size=args.queue_size,
        retries=args.retries,
        mode=args.mode,
        hot_sites=args.hot_sites,
        quota_tokens=args.quota,
        quota_refill_per_s=args.quota_refill,
        job_timeout=args.job_timeout,
        registry=registry,
        tracer=tracer,
        keep_traces=args.keep_traces,
        crash_every=args.chaos_crash_every,
        journal=journal,
        dedup=not args.no_dedup,
    )
    daemon = ServeDaemon(
        service,
        host=args.host,
        port=args.port,
        sample_interval_s=args.sample_interval,
        retention=args.retention,
        slos=slos,
        collect=not args.no_collector,
    )
    # SIGTERM/SIGINT start a graceful drain: admissions get 503 +
    # Retry-After immediately; in-flight work gets --drain-timeout
    # seconds to settle; whatever is left stays journaled for the next
    # boot.  A second signal during the drain is the impatient path —
    # the default handlers are restored, so it kills the process and
    # the journal carries the rest.
    draining = {"flag": False}

    def _on_signal(signum, frame):
        draining["flag"] = True
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.default_int_handler)

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    port = daemon.start()
    graceful = False
    try:
        recovery = service.recovery
        if recovery:
            print(
                "recovery: "
                f"resumed={len(recovery.get('resumed', []))} "
                f"restored={len(recovery.get('restored', []))} "
                f"lost={len(recovery.get('lost', []))}",
                flush=True,
            )
        print(
            f"repro serve listening on http://{args.host}:{port} "
            f"(workers={args.workers} queue={args.queue_size} "
            f"mode={args.mode} spool={spool})",
            flush=True,
        )
        print(
            "endpoints: POST /submit | GET /result/<id> /report/<id> "
            "/metrics /status /healthz /timeseries /alerts /dashboard",
            flush=True,
        )
        deadline = (
            time.monotonic() + args.for_seconds
            if args.for_seconds is not None
            else None
        )
        while not draining["flag"]:
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(0.2)
        graceful = draining["flag"]
    except KeyboardInterrupt:
        graceful = True
    finally:
        if graceful:
            print(
                f"draining: admissions stopped, settling in-flight work "
                f"(up to {args.drain_timeout:.0f}s)",
                flush=True,
            )
            settled = daemon.drain(timeout=args.drain_timeout)
            daemon.stop_preserving()
            print(
                "drained cleanly"
                if settled
                else "drain timed out; unfinished work journaled for "
                     "the next boot",
                flush=True,
            )
        else:
            daemon.stop()
        _close_telemetry(exporter, registry)
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    from .obs import (
        TimeSeriesStore,
        default_slos,
        evaluate_slos,
        load_slo_config,
        render_slo_text,
    )

    objectives = load_slo_config(args.config) if args.config else default_slos()
    with open(args.timeseries, "r", encoding="utf-8") as fh:
        store = TimeSeriesStore.from_payload(json.load(fh))
    report = evaluate_slos(store, objectives)
    if args.json:
        print(json.dumps(report, sort_keys=True))
    else:
        print(render_slo_text(report))
    return 0 if report["ok"] else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .hardware import SimConfig, simulate_trace
    from .runtime.trace import open_trace

    registry, tracer, exporter = _telemetry_session(args)
    with tracer.span("simulate.load", trace=args.trace):
        # Binary traces stream chunk-by-chunk through the simulator;
        # legacy JSONL traces fall back to an in-memory load.
        trace = open_trace(args.trace)
    with tracer.span("simulate.baseline"):
        base = simulate_trace(trace, SimConfig(detection=False))
    with tracer.span("simulate.detection", unit=args.unit, mode=args.mode):
        det = simulate_trace(
            trace,
            SimConfig(
                detection=True, metadata_mode=args.mode, check_unit=args.unit
            ),
            registry=registry,
        )
    registry.set_gauge("sim.baseline_cycles", base.cycles)
    registry.set_gauge("sim.slowdown", det.cycles / base.cycles)
    _close_telemetry(exporter, registry)
    print(f"baseline cycles   {base.cycles}")
    print(f"detection cycles  {det.cycles}  "
          f"({args.unit} unit, {args.mode} metadata)")
    print(f"slowdown          {det.cycles / base.cycles:.3f}x")
    return 0


def _cmd_forensics(args: argparse.Namespace) -> int:
    from .clean import run_clean
    from .obs import (
        SiteProfiler,
        TimelineRecorder,
        telemetry_scope,
        validate_chrome_trace,
        write_forensics,
    )
    from .obs.forensics import build_hb_graph, chrome_trace
    from .workloads import build_program, get_benchmark

    spec = get_benchmark(args.name)
    recorder = TimelineRecorder(label=spec.name)
    profiler = SiteProfiler()
    program = build_program(
        spec, scale=args.scale, racy=args.racy, seed=args.seed
    )
    # The ambient scope hands the profiler to the CleanMonitor, so the
    # HTML report's hot-site panel attributes the same run.
    with telemetry_scope(sites=profiler):
        result = run_clean(
            program,
            timeline=recorder,
            recovery=args.recovery,
            max_threads=24,
        )
    payload = recorder.to_payload()
    paths = write_forensics(
        args.out, spec.name, payload, sites=profiler.to_payload()
    )
    errors = []
    if args.validate:
        errors = validate_chrome_trace(chrome_trace(payload))
    graph = build_hb_graph(payload)
    summary = {
        "benchmark": spec.name,
        "racy": bool(args.racy),
        "race": str(result.race) if result.race else None,
        "pair": graph["pair"],
        "ordered": graph["ordered"],
        "artifacts": paths,
        "validation_errors": errors,
    }
    if args.json:
        print(json.dumps(summary, sort_keys=True))
        return 1 if errors else 0
    race_text = (payload.get("race_report") or {}).get("text")
    if race_text:
        print(race_text)
        verdict = (
            "no happens-before path connects the racing pair "
            "(the race is certified)"
            if graph["ordered"] is False
            else "the pair is ordered by synchronization"
        )
        print(f"  {verdict}")
    elif result.recovery is not None and not result.recovery.clean:
        print(f"{spec.name}: race(s) recovered "
              f"({result.recovery.races} event(s)); see the HTML report")
    else:
        print(f"{spec.name}: no race; timeline recorded")
    for name in sorted(paths):
        print(f"  {name}: {paths[name]}")
    if errors:
        print("Chrome-trace validation FAILED:")
        for err in errors[:10]:
            print(f"  {err}")
        return 1
    if args.validate:
        print("  chrome trace validated (ph/ts/pid/tid + flow pairing ok)")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import tempfile

    from .faults import run_chaos
    from .obs import MetricsRegistry

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    registry = MetricsRegistry()
    report = run_chaos(
        seed=args.seed,
        faults=args.faults,
        workdir=workdir,
        workers=args.jobs,
        watchdog=args.watchdog,
        registry=registry,
        forensics_dir=args.forensics,
    )
    if args.report:
        import shutil

        shutil.copyfile(f"{workdir}/chaos_report.json", args.report)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"chaos: seed={report['seed']} faults={','.join(report['faults'])}")
        for c in report["checks"]:
            state = (
                "ok"
                if c["detected"] and c["recovered"]
                else "NOT DETECTED" if not c["detected"] else "NOT RECOVERED"
            )
            target = f" -> {c['target']}" if "target" in c else ""
            print(f"  {c['fault']:<20s}{target:<18s} {state}")
        print(
            f"  deterministic: {'yes' if report['deterministic'] else 'NO'}; "
            f"report: {workdir}/chaos_report.json"
        )
    counters = {
        k: v
        for k, v in registry.snapshot().items()
        if k.startswith(("faults.", "trace.", "checkpoint."))
    }
    if counters and not args.json:
        for name in sorted(counters):
            print(f"  {name} = {counters[name]}")
    return 0 if report["ok"] else 1


def _cmd_list(args: argparse.Namespace) -> int:
    from .workloads import ALL_BENCHMARKS

    if args.measured:
        from .workloads import characterize

        print(f"{'name':<16s} {'density':<8s} {'sync/thr':<9s} "
              f"{'write%':<7s} {'wide%':<6s} footprint")
        for spec in ALL_BENCHMARKS:
            c = characterize(spec, scale=args.scale)
            print(
                f"{spec.name:<16s} {c.shared_density:<8.3f} "
                f"{c.sync_ops / c.threads:<9.1f} "
                f"{c.write_fraction * 100:<7.1f} "
                f"{c.wide_fraction * 100:<6.1f} {c.footprint_bytes}B"
            )
        return 0
    print(f"{'name':<16s} {'suite':<8s} {'style':<15s} "
          f"{'racy':<5s} {'density':<8s} notes")
    for spec in ALL_BENCHMARKS:
        notes = []
        if spec.byte_granular:
            notes.append("byte-granular")
        if spec.blocking_sync:
            notes.append("blocking-sync")
        if spec.hw_omitted:
            notes.append("hw-omitted")
        print(
            f"{spec.name:<16s} {spec.suite:<8s} {spec.style:<15s} "
            f"{'yes' if spec.racy else 'no':<5s} "
            f"{spec.shared_access_density:<8.3f} {', '.join(notes)}"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CLEAN (ISCA 2015) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def telemetry_flag(p):
        p.add_argument("--telemetry", metavar="OUT.jsonl", default=None,
                       help="write a JSONL span timeline + metrics snapshot")

    p = sub.add_parser("report", help="regenerate every table/figure")
    p.add_argument("--fast", action="store_true")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for the per-benchmark jobs")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and do not write the checkpoint cache")
    p.add_argument("--cache-dir", default=".cache/experiments", metavar="DIR")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-job timeout (needs process workers)")
    p.add_argument("--retries", type=int, default=2, metavar="N")
    p.add_argument("--inject-failure", metavar="BENCHMARK", default=None,
                   help="make BENCHMARK's jobs fail (degradation test)")
    p.add_argument("--status", metavar="PATH", default=None,
                   help="republish live run progress as JSON to PATH")
    p.add_argument("--serve", type=int, default=None, metavar="PORT",
                   help="serve /metrics + /status over HTTP during the run")
    p.add_argument("--prom", metavar="PATH", default=None,
                   help="write a final Prometheus text snapshot")
    p.add_argument("--sites", action="store_true",
                   help="hot-site attribution: print the merged top-K table")
    p.add_argument("--forensics", metavar="DIR", default=None,
                   help="record job timelines; write a forensics bundle "
                        "per raced run under DIR")
    telemetry_flag(p)
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("experiment", help="run one experiment")
    p.add_argument("name")
    p.set_defaults(fn=_cmd_experiment)

    p = sub.add_parser("check", help="demo CLEAN on a built-in racy program")
    p.add_argument("kind", choices=["racy", "torn"])
    p.add_argument("--seeds", type=int, default=8)
    p.add_argument("--json", action="store_true",
                   help="machine-readable result on stdout")
    p.add_argument("--forensics", metavar="DIR", default=None,
                   help="write a forensics bundle per seed under DIR")
    telemetry_flag(p)
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser("bench", help="run one workload under CLEAN")
    p.add_argument("name")
    p.add_argument("--scale", default="test")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--racy", action="store_true")
    p.add_argument("--json", action="store_true",
                   help="machine-readable result on stdout")
    telemetry_flag(p)
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser(
        "profile",
        help="run one workload with full telemetry and dump every counter "
             "(the special name 'report' profiles the fast report's job "
             "sweep, surfacing the runner.* counters)",
    )
    p.add_argument("name")
    p.add_argument("--scale", default="test")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes ('report' profile only)")
    p.add_argument("--format", choices=["text", "json", "prom"], default=None,
                   help="output format (default: text)")
    p.add_argument("--json", action="store_true",
                   help="deprecated alias for --format json")
    p.add_argument("--sites", action="store_true",
                   help="hot-site attribution: collect and print the "
                        "top-K addresses/SFRs by race-check work")
    p.add_argument("--serve", type=int, default=None, metavar="PORT",
                   help="serve /metrics (+ /status for 'report') over "
                        "HTTP during the run; 0 picks an ephemeral port")
    telemetry_flag(p)
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser("trace", help="record a workload's access trace")
    p.add_argument("name")
    p.add_argument("out")
    p.add_argument("--scale", default="test")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--racy", action="store_true",
                   help="record the seeded-race variant (for `analyze`)")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "analyze", help="race-analyze a recorded trace offline"
    )
    p.add_argument("trace")
    p.add_argument("--mode", default="batch",
                   choices=["scalar", "batch", "sharded"],
                   help="scalar reference, vectorized check_block batch "
                        "(default), or address-sharded worker processes")
    p.add_argument("--shards", type=int, default=0,
                   help="address shards for --mode sharded (0 = one per "
                        "worker)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for --mode sharded "
                        "(default: CPU count)")
    p.add_argument("--salvage", action="store_true",
                   help="analyze the readable prefix of a damaged trace")
    p.add_argument("--hot-sites", type=int, default=0, metavar="K",
                   help="rank the top K shared addresses by access count "
                        "(0 = off)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser(
        "serve",
        help="run the race-checking ingestion daemon (POST /submit binary "
             "traces, poll /result/<id>)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="bind port (0 = pick an ephemeral port)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="resident analysis worker processes")
    p.add_argument("--queue-size", type=int, default=32, metavar="N",
                   help="bounded ingest queue; full -> 429 queue_full")
    p.add_argument("--retries", type=int, default=1, metavar="N",
                   help="per-submission retries after a worker crash")
    p.add_argument("--mode", default="batch", choices=["batch", "scalar"],
                   help="analysis lane for each submission")
    p.add_argument("--hot-sites", type=int, default=8, metavar="K",
                   help="hot-site entries in each report (0 = off)")
    p.add_argument("--quota", type=int, default=None, metavar="TOKENS",
                   help="per-tenant submission budget "
                        "(default: unlimited)")
    p.add_argument("--quota-refill", type=float, default=0.0,
                   metavar="PER_S",
                   help="token refill rate; 0 makes --quota a hard budget")
    p.add_argument("--job-timeout", type=float, default=None, metavar="S",
                   help="kill an analysis worker stuck longer than S")
    p.add_argument("--spool", default=None, metavar="DIR",
                   help="upload spool directory (default: temp dir)")
    p.add_argument("--keep-traces", action="store_true",
                   help="keep spooled traces after analysis")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="write-ahead submission journal file "
                        "(default: <spool>/journal.clnj)")
    p.add_argument("--no-journal", action="store_true",
                   help="disable the write-ahead journal (submissions "
                        "do not survive a restart)")
    p.add_argument("--no-dedup", action="store_true",
                   help="disable the content-hashed verdict cache "
                        "(every upload hits the worker pool)")
    p.add_argument("--drain-timeout", type=float, default=30.0, metavar="S",
                   help="on SIGTERM/SIGINT: seconds to settle in-flight "
                        "work before journaling the rest (default: 30)")
    p.add_argument("--recover-only", action="store_true",
                   help="dry-run journal recovery against --spool, print "
                        "the report and exit (nothing is modified; exit 1 "
                        "when submissions would be lost)")
    p.add_argument("--chaos-crash-every", type=int, default=0, metavar="N",
                   help="fault injection: crash the worker on every Nth "
                        "submission (0 = off)")
    p.add_argument("--for", dest="for_seconds", type=float, default=None,
                   metavar="SECONDS",
                   help="serve for a fixed time then exit cleanly "
                        "(default: until Ctrl-C)")
    p.add_argument("--sample-interval", type=float, default=1.0, metavar="S",
                   help="collector sampling period for /timeseries "
                        "(default: 1.0s)")
    p.add_argument("--retention", type=int, default=600, metavar="N",
                   help="ring-buffer capacity: samples kept per series "
                        "(default: 600)")
    p.add_argument("--slo", default=None, metavar="CONFIG",
                   help="JSON SLO config for /alerts and /dashboard "
                        "(default: built-in objectives)")
    p.add_argument("--no-collector", action="store_true",
                   help="disable the time-series collector thread")
    telemetry_flag(p)
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "slo",
        help="evaluate SLO burn-rate alerts offline from a scraped "
             "/timeseries artifact (exit 1 when firing)",
    )
    p.add_argument("--timeseries", required=True, metavar="FILE",
                   help="JSON payload scraped from GET /timeseries")
    p.add_argument("--config", default=None, metavar="FILE",
                   help="JSON SLO config (default: built-in objectives)")
    p.add_argument("--json", action="store_true",
                   help="print the full alert document as JSON")
    p.set_defaults(fn=_cmd_slo)

    p = sub.add_parser("simulate", help="replay a trace on the hw simulator")
    p.add_argument("trace")
    p.add_argument("--mode", default="clean",
                   choices=["clean", "epoch1", "epoch4"])
    p.add_argument("--unit", default="clean", choices=["clean", "precise"])
    telemetry_flag(p)
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser(
        "chaos",
        help="inject faults end to end and assert every recovery invariant",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--faults",
        default="trace-bitflip,checkpoint-truncate,worker-crash",
        metavar="KINDS",
        help="comma-separated fault kinds (trace-bitflip, "
             "checkpoint-truncate, worker-crash, worker-hang, "
             "monitor-raise, daemon-kill)",
    )
    p.add_argument("--jobs", type=int, default=2, metavar="N",
                   help="worker processes for the chaos job passes")
    p.add_argument("--watchdog", type=float, default=3.0, metavar="SECONDS",
                   help="silent-worker window before the watchdog kills it")
    p.add_argument("--workdir", default=None, metavar="DIR",
                   help="working directory for artifacts (default: temp dir)")
    p.add_argument("--report", default=None, metavar="PATH",
                   help="copy the JSON chaos report to PATH")
    p.add_argument("--forensics", metavar="DIR", default=None,
                   help="record timelines and write a forensics bundle "
                        "per chaos job under DIR")
    p.add_argument("--json", action="store_true",
                   help="print the full report as JSON")
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser(
        "forensics",
        help="record one workload's execution timeline and write the "
             "Chrome-trace / happens-before-graph / HTML race bundle",
    )
    p.add_argument("name")
    p.add_argument("--racy", action="store_true",
                   help="run the benchmark's racy variant")
    p.add_argument("--scale", default="test")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--recovery", default=None,
                   choices=["abort", "quarantine", "rollback-retry"],
                   help="survive the race under this recovery mode "
                        "(annotated in the artifacts)")
    p.add_argument("--out", default="forensics", metavar="DIR",
                   help="output directory (default: ./forensics)")
    p.add_argument("--validate", action="store_true",
                   help="validate the emitted Chrome trace against the "
                        "trace-event schema")
    p.add_argument("--json", action="store_true",
                   help="machine-readable summary on stdout")
    p.set_defaults(fn=_cmd_forensics)

    p = sub.add_parser("list", help="list the modelled benchmarks")
    p.add_argument("--measured", action="store_true",
                   help="measure characteristics by running each model")
    p.add_argument("--scale", default="test")
    p.set_defaults(fn=_cmd_list)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
