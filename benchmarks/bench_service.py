"""Throughput and latency of the ``repro serve`` ingestion daemon.

An in-process :class:`~repro.service.ServeDaemon` (real HTTP over
loopback, real worker processes) under a closed-loop client fleet: each
of ``--clients`` threads repeatedly POSTs a recorded trace to
``/submit`` and polls ``/result/<id>`` until the verdict lands, for
``--seconds`` of wall time.  Half the clients submit the racy variant,
half the clean one, and every verdict is checked against the expected
answer — a fast wrong answer is no answer.

The JSON artifact records sustained throughput (verdicts/sec), the
client-observed submit-to-verdict latency distribution (p50/p90/p99),
the server-side ``serve.latency`` histogram's sample count, a
saturation probe (with the daemon paused and a tiny queue, a burst of
submissions must split into 202s and 429s — the backpressure contract
measured, not assumed), and a dedup probe: re-uploading a known trace
must be verdict-served from the content-hash cache at a fraction of
the cold-analysis latency, without touching the worker pool.

Clients honor ``Retry-After`` on 429/503 responses — jittered backoff,
never a hot retry loop — and the artifact reports how often they had
to.  The throughput and saturation services run with ``dedup=False``
(every client re-uploads the same bytes; a cache hit would measure the
cache, not the daemon).

Run it directly (CI's service-smoke job does)::

    PYTHONPATH=src python benchmarks/bench_service.py --out BENCH_service.json

``--check`` (release checklist) fails unless the daemon sustains
``--min-throughput`` verdicts/sec (default 10) with zero failed or
mismatched verdicts, and the dedup cache serves hits at most
``--max-hit-ratio`` (default 0.1) of the cold verdict latency.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import sys
import tempfile
import threading
import time
from typing import Dict, List

from repro.experiments.traces import record_trace
from repro.obs import MetricsRegistry
from repro.service import RaceCheckService, ServeDaemon
from repro.workloads.suite import get_benchmark

#: Workload the clients upload: the dedup model at test scale — small
#: enough that the daemon (not the detector) dominates, large enough to
#: exercise the real batch lane per submission.
BENCHMARK = "dedup"
SCALE = "test"
SEED = 1


def _record(racy: bool, seed: int = SEED, scale: str = SCALE) -> bytes:
    trace = record_trace(
        get_benchmark(BENCHMARK), scale=scale, seed=seed, racy=racy
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.trace")
        trace.save(path)
        with open(path, "rb") as fh:
            return fh.read()


def _post(port: int, path: str, body: bytes):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("POST", path, body=body)
        resp = conn.getresponse()
        headers = {k.lower(): v for k, v in resp.getheaders()}
        return resp.status, json.loads(resp.read()), headers
    finally:
        conn.close()


def _get(port: int, path: str):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


class _Client(threading.Thread):
    """One closed-loop submitter: POST, poll to verdict, repeat."""

    def __init__(self, port: int, body: bytes, expected: str,
                 deadline: float) -> None:
        super().__init__(daemon=True)
        self.port = port
        self.body = body
        self.expected = expected
        self.deadline = deadline
        self.latencies: List[float] = []
        self.completed = 0
        self.mismatches = 0
        self.failures = 0
        self.rejected = 0
        self.retries_429 = 0
        self.retries_503 = 0
        self.backoff_s = 0.0

    def _backoff(self, headers: Dict[str, str]) -> None:
        """Honor Retry-After with jitter; never a hot retry loop."""
        try:
            base = float(headers.get("retry-after", ""))
        except ValueError:
            base = 0.05
        delay = min(base, 2.0) * (0.5 + random.random())
        remaining = self.deadline - time.monotonic()
        if remaining <= 0:
            return
        delay = min(delay, remaining)
        self.backoff_s += delay
        time.sleep(delay)

    def run(self) -> None:
        while time.monotonic() < self.deadline:
            start = time.monotonic()
            status, payload, headers = _post(self.port, "/submit", self.body)
            if status == 429:
                self.rejected += 1
                self.retries_429 += 1
                self._backoff(headers)
                continue
            if status == 503:
                self.retries_503 += 1
                self._backoff(headers)
                continue
            if status != 202:
                self.failures += 1
                continue
            sid = payload["id"]
            while True:
                _, result = _get(self.port, f"/result/{sid}")
                if result["state"] in ("done", "failed"):
                    break
                time.sleep(0.002)
            self.latencies.append(time.monotonic() - start)
            if result["state"] != "done":
                self.failures += 1
            elif result["verdict"] != self.expected:
                self.mismatches += 1
            else:
                self.completed += 1


def _measure_throughput(
    port: int, racy: bytes, clean: bytes, clients: int, seconds: float
) -> Dict[str, object]:
    deadline = time.monotonic() + seconds
    fleet = [
        _Client(
            port,
            racy if i % 2 == 0 else clean,
            "racy" if i % 2 == 0 else "clean",
            deadline,
        )
        for i in range(clients)
    ]
    start = time.monotonic()
    for c in fleet:
        c.start()
    for c in fleet:
        c.join()
    elapsed = time.monotonic() - start
    latencies = [s for c in fleet for s in c.latencies]
    completed = sum(c.completed for c in fleet)
    return {
        "clients": clients,
        "wall_seconds": round(elapsed, 3),
        "verdicts": completed,
        "verdicts_per_sec": completed / elapsed if elapsed else 0.0,
        "rejected_429": sum(c.rejected for c in fleet),
        "failed": sum(c.failures for c in fleet),
        "verdict_mismatches": sum(c.mismatches for c in fleet),
        "retries": {
            "after_429": sum(c.retries_429 for c in fleet),
            "after_503": sum(c.retries_503 for c in fleet),
            "backoff_s_total": round(sum(c.backoff_s for c in fleet), 3),
        },
        "latency_s": {
            "p50": round(_percentile(latencies, 0.50), 6),
            "p90": round(_percentile(latencies, 0.90), 6),
            "p99": round(_percentile(latencies, 0.99), 6),
            "max": round(max(latencies), 6) if latencies else 0.0,
            "samples": len(latencies),
        },
    }


def _measure_saturation(clean: bytes, spool: str) -> Dict[str, object]:
    """Pause a tiny-queue daemon and burst it: count 202 vs 429."""
    service = RaceCheckService(
        spool=spool, workers=1, queue_size=2, registry=MetricsRegistry(),
        dedup=False,
    )
    accepted = rejected = 0
    with ServeDaemon(service) as daemon:
        service.pause()
        for _ in range(12):
            status, _payload, _headers = _post(daemon.port, "/submit", clean)
            if status == 202:
                accepted += 1
            elif status == 429:
                rejected += 1
        service.resume()
        drained = service.drain(timeout=60)
    return {
        "burst": 12,
        "queue_size": 2,
        "accepted_202": accepted,
        "rejected_429": rejected,
        "drained_after_resume": drained,
    }


def _measure_dedup(spool: str, hits_per_trace: int = 10) -> Dict[str, object]:
    """Cold verdicts vs cache-served re-uploads of the same bytes.

    Three distinct traces: each is analyzed cold once, then re-uploaded
    ``hits_per_trace`` times.  Every re-upload must be flagged
    ``cached``, settle synchronously, and match the cold verdict; the
    headline number is the median hit-to-cold latency ratio.
    """
    registry = MetricsRegistry()
    service = RaceCheckService(spool=spool, workers=1, registry=registry)
    cold: List[float] = []
    hits: List[float] = []
    uncached_hits = 0
    mismatches = 0
    with ServeDaemon(service) as daemon:
        for seed in (11, 12, 13):
            # A heavier trace than the throughput workload — and a
            # clean one, so analysis walks the whole trace instead of
            # stopping at the first race: the cold verdict must cost
            # real analysis time for the hit-to-cold ratio to measure
            # the cache rather than HTTP overhead.
            body = _record(racy=False, seed=seed, scale="simlarge")
            start = time.monotonic()
            status, payload, _headers = _post(daemon.port, "/submit", body)
            assert status == 202, f"cold submit got {status}"
            sid = payload["id"]
            while True:
                _, result = _get(daemon.port, f"/result/{sid}")
                if result["state"] in ("done", "failed"):
                    break
                time.sleep(0.002)
            cold.append(time.monotonic() - start)
            expected = result.get("verdict")
            for _ in range(hits_per_trace):
                start = time.monotonic()
                status, payload, _headers = _post(
                    daemon.port, "/submit", body
                )
                _, result = _get(daemon.port, f"/result/{payload['id']}")
                while result["state"] not in ("done", "failed"):
                    time.sleep(0.002)
                    _, result = _get(daemon.port, f"/result/{payload['id']}")
                hits.append(time.monotonic() - start)
                if not payload.get("cached"):
                    uncached_hits += 1
                if (
                    result["state"] != "done"
                    or result.get("verdict") != expected
                ):
                    mismatches += 1
        snapshot = registry.snapshot()
        pool_submitted = service.pool.status_snapshot()["submitted"]
    cold_p50 = _percentile(cold, 0.50)
    hit_p50 = _percentile(hits, 0.50)
    return {
        "cold_submissions": len(cold),
        "hit_submissions": len(hits),
        "uncached_hits": uncached_hits,
        "verdict_mismatches": mismatches,
        "cache_hits": int(snapshot.get("cache.hit", 0)),
        "cache_misses": int(snapshot.get("cache.miss", 0)),
        "pool_jobs": int(pool_submitted),
        "cold_latency_s": {"p50": round(cold_p50, 6), "samples": len(cold)},
        "hit_latency_s": {"p50": round(hit_p50, 6), "samples": len(hits)},
        "hit_to_cold_ratio": (
            round(hit_p50 / cold_p50, 6) if cold_p50 else 0.0
        ),
    }


def run_benchmarks(clients: int, seconds: float,
                   workers: int) -> Dict[str, object]:
    racy = _record(racy=True)
    clean = _record(racy=False)
    with tempfile.TemporaryDirectory() as spool:
        registry = MetricsRegistry()
        # dedup off: every client re-uploads the same bytes, and the
        # point here is daemon throughput, not cache-hit throughput.
        service = RaceCheckService(
            spool=os.path.join(spool, "run"),
            workers=workers,
            queue_size=64,
            registry=registry,
            dedup=False,
        )
        with ServeDaemon(service) as daemon:
            throughput = _measure_throughput(
                daemon.port, racy, clean, clients, seconds
            )
            server_latency = registry.histogram("serve.latency")
            saturation = _measure_saturation(
                clean, os.path.join(spool, "saturation")
            )
            dedup = _measure_dedup(os.path.join(spool, "dedup"))
    return {
        "benchmark": "service_ingestion",
        "workload": {
            "model": BENCHMARK,
            "scale": SCALE,
            "racy_trace_bytes": len(racy),
            "clean_trace_bytes": len(clean),
        },
        "host": {"cpu_count": os.cpu_count() or 1, "workers": workers},
        "throughput": throughput,
        "server_latency_samples": server_latency.count,
        "saturation": saturation,
        "dedup": dedup,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent closed-loop submitter threads")
    parser.add_argument("--seconds", type=float, default=5.0,
                        help="measurement window")
    parser.add_argument("--workers", type=int, default=2,
                        help="daemon analysis worker processes")
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument("--min-throughput", type=float, default=10.0,
                        help="verdicts/sec floor for --check")
    parser.add_argument("--max-hit-ratio", type=float, default=0.1,
                        help="cache-hit / cold-verdict latency ceiling "
                             "for --check")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail below --min-throughput, on any failed/wrong verdict, "
             "or when cache hits run slower than --max-hit-ratio of cold",
    )
    args = parser.parse_args(argv)

    report = run_benchmarks(args.clients, args.seconds, args.workers)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    t = report["throughput"]
    lat = t["latency_s"]
    sat = report["saturation"]
    dedup = report["dedup"]
    print(
        f"throughput: {t['verdicts_per_sec']:.1f} verdicts/s "
        f"({t['verdicts']} verdicts, {t['clients']} clients, "
        f"{t['wall_seconds']}s)"
    )
    print(
        f"latency:    p50 {lat['p50'] * 1000:.1f}ms  "
        f"p90 {lat['p90'] * 1000:.1f}ms  p99 {lat['p99'] * 1000:.1f}ms  "
        f"({lat['samples']} samples)"
    )
    print(
        f"saturation: {sat['accepted_202']}x202 + {sat['rejected_429']}x429 "
        f"from a {sat['burst']}-deep burst into a "
        f"{sat['queue_size']}-slot queue"
    )
    print(
        f"retries:    {t['retries']['after_429']}x429 + "
        f"{t['retries']['after_503']}x503 honored "
        f"({t['retries']['backoff_s_total']}s total backoff)"
    )
    print(
        f"dedup:      hit p50 {dedup['hit_latency_s']['p50'] * 1000:.2f}ms "
        f"vs cold p50 {dedup['cold_latency_s']['p50'] * 1000:.1f}ms "
        f"(ratio {dedup['hit_to_cold_ratio']:.4f}, "
        f"{dedup['cache_hits']} hits, {dedup['pool_jobs']} pool jobs)"
    )
    print(f"wrote {args.out}")
    if args.check:
        problems = []
        if t["verdicts_per_sec"] < args.min_throughput:
            problems.append(
                f"throughput {t['verdicts_per_sec']:.1f}/s below "
                f"{args.min_throughput}/s floor"
            )
        if t["failed"] or t["verdict_mismatches"]:
            problems.append(
                f"{t['failed']} failed / {t['verdict_mismatches']} "
                f"mismatched verdicts"
            )
        if not sat["rejected_429"] or not sat["accepted_202"]:
            problems.append("saturation burst did not split into 202s + 429s")
        if not sat["drained_after_resume"]:
            problems.append("daemon did not drain after resume")
        if dedup["hit_to_cold_ratio"] > args.max_hit_ratio:
            problems.append(
                f"cache-hit latency ratio {dedup['hit_to_cold_ratio']:.4f} "
                f"above {args.max_hit_ratio} ceiling"
            )
        if dedup["uncached_hits"] or dedup["verdict_mismatches"]:
            problems.append(
                f"{dedup['uncached_hits']} re-uploads missed the cache / "
                f"{dedup['verdict_mismatches']} cached verdicts wrong"
            )
        if dedup["pool_jobs"] != dedup["cold_submissions"]:
            problems.append(
                f"cache hits dispatched to the pool "
                f"({dedup['pool_jobs']} jobs for "
                f"{dedup['cold_submissions']} cold submissions)"
            )
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        if problems:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
