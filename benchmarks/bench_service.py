"""Throughput and latency of the ``repro serve`` ingestion daemon.

An in-process :class:`~repro.service.ServeDaemon` (real HTTP over
loopback, real worker processes) under a closed-loop client fleet: each
of ``--clients`` threads repeatedly POSTs a recorded trace to
``/submit`` and polls ``/result/<id>`` until the verdict lands, for
``--seconds`` of wall time.  Half the clients submit the racy variant,
half the clean one, and every verdict is checked against the expected
answer — a fast wrong answer is no answer.

The JSON artifact records sustained throughput (verdicts/sec), the
client-observed submit-to-verdict latency distribution (p50/p90/p99),
the server-side ``serve.latency`` histogram's sample count, and a
saturation probe: with the daemon paused and a tiny queue, a burst of
submissions must split into 202s and 429s — the backpressure contract
measured, not assumed.

Run it directly (CI's service-smoke job does)::

    PYTHONPATH=src python benchmarks/bench_service.py --out BENCH_service.json

``--check`` (release checklist) fails unless the daemon sustains
``--min-throughput`` verdicts/sec (default 10) with zero failed or
mismatched verdicts.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import sys
import tempfile
import threading
import time
from typing import Dict, List

from repro.experiments.traces import record_trace
from repro.obs import MetricsRegistry
from repro.service import RaceCheckService, ServeDaemon
from repro.workloads.suite import get_benchmark

#: Workload the clients upload: the dedup model at test scale — small
#: enough that the daemon (not the detector) dominates, large enough to
#: exercise the real batch lane per submission.
BENCHMARK = "dedup"
SCALE = "test"
SEED = 1


def _record(racy: bool) -> bytes:
    trace = record_trace(
        get_benchmark(BENCHMARK), scale=SCALE, seed=SEED, racy=racy
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.trace")
        trace.save(path)
        with open(path, "rb") as fh:
            return fh.read()


def _post(port: int, path: str, body: bytes):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("POST", path, body=body)
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


def _get(port: int, path: str):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


class _Client(threading.Thread):
    """One closed-loop submitter: POST, poll to verdict, repeat."""

    def __init__(self, port: int, body: bytes, expected: str,
                 deadline: float) -> None:
        super().__init__(daemon=True)
        self.port = port
        self.body = body
        self.expected = expected
        self.deadline = deadline
        self.latencies: List[float] = []
        self.completed = 0
        self.mismatches = 0
        self.failures = 0
        self.rejected = 0

    def run(self) -> None:
        while time.monotonic() < self.deadline:
            start = time.monotonic()
            status, payload = _post(self.port, "/submit", self.body)
            if status == 429:
                self.rejected += 1
                time.sleep(0.01)
                continue
            if status != 202:
                self.failures += 1
                continue
            sid = payload["id"]
            while True:
                _, result = _get(self.port, f"/result/{sid}")
                if result["state"] in ("done", "failed"):
                    break
                time.sleep(0.002)
            self.latencies.append(time.monotonic() - start)
            if result["state"] != "done":
                self.failures += 1
            elif result["verdict"] != self.expected:
                self.mismatches += 1
            else:
                self.completed += 1


def _measure_throughput(
    port: int, racy: bytes, clean: bytes, clients: int, seconds: float
) -> Dict[str, object]:
    deadline = time.monotonic() + seconds
    fleet = [
        _Client(
            port,
            racy if i % 2 == 0 else clean,
            "racy" if i % 2 == 0 else "clean",
            deadline,
        )
        for i in range(clients)
    ]
    start = time.monotonic()
    for c in fleet:
        c.start()
    for c in fleet:
        c.join()
    elapsed = time.monotonic() - start
    latencies = [s for c in fleet for s in c.latencies]
    completed = sum(c.completed for c in fleet)
    return {
        "clients": clients,
        "wall_seconds": round(elapsed, 3),
        "verdicts": completed,
        "verdicts_per_sec": completed / elapsed if elapsed else 0.0,
        "rejected_429": sum(c.rejected for c in fleet),
        "failed": sum(c.failures for c in fleet),
        "verdict_mismatches": sum(c.mismatches for c in fleet),
        "latency_s": {
            "p50": round(_percentile(latencies, 0.50), 6),
            "p90": round(_percentile(latencies, 0.90), 6),
            "p99": round(_percentile(latencies, 0.99), 6),
            "max": round(max(latencies), 6) if latencies else 0.0,
            "samples": len(latencies),
        },
    }


def _measure_saturation(clean: bytes, spool: str) -> Dict[str, object]:
    """Pause a tiny-queue daemon and burst it: count 202 vs 429."""
    service = RaceCheckService(
        spool=spool, workers=1, queue_size=2, registry=MetricsRegistry()
    )
    accepted = rejected = 0
    with ServeDaemon(service) as daemon:
        service.pause()
        for _ in range(12):
            status, _payload = _post(daemon.port, "/submit", clean)
            if status == 202:
                accepted += 1
            elif status == 429:
                rejected += 1
        service.resume()
        drained = service.drain(timeout=60)
    return {
        "burst": 12,
        "queue_size": 2,
        "accepted_202": accepted,
        "rejected_429": rejected,
        "drained_after_resume": drained,
    }


def run_benchmarks(clients: int, seconds: float,
                   workers: int) -> Dict[str, object]:
    racy = _record(racy=True)
    clean = _record(racy=False)
    with tempfile.TemporaryDirectory() as spool:
        registry = MetricsRegistry()
        service = RaceCheckService(
            spool=os.path.join(spool, "run"),
            workers=workers,
            queue_size=64,
            registry=registry,
        )
        with ServeDaemon(service) as daemon:
            throughput = _measure_throughput(
                daemon.port, racy, clean, clients, seconds
            )
            server_latency = registry.histogram("serve.latency")
            saturation = _measure_saturation(
                clean, os.path.join(spool, "saturation")
            )
    return {
        "benchmark": "service_ingestion",
        "workload": {
            "model": BENCHMARK,
            "scale": SCALE,
            "racy_trace_bytes": len(racy),
            "clean_trace_bytes": len(clean),
        },
        "host": {"cpu_count": os.cpu_count() or 1, "workers": workers},
        "throughput": throughput,
        "server_latency_samples": server_latency.count,
        "saturation": saturation,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent closed-loop submitter threads")
    parser.add_argument("--seconds", type=float, default=5.0,
                        help="measurement window")
    parser.add_argument("--workers", type=int, default=2,
                        help="daemon analysis worker processes")
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument("--min-throughput", type=float, default=10.0,
                        help="verdicts/sec floor for --check")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail below --min-throughput or on any failed/wrong verdict",
    )
    args = parser.parse_args(argv)

    report = run_benchmarks(args.clients, args.seconds, args.workers)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    t = report["throughput"]
    lat = t["latency_s"]
    sat = report["saturation"]
    print(
        f"throughput: {t['verdicts_per_sec']:.1f} verdicts/s "
        f"({t['verdicts']} verdicts, {t['clients']} clients, "
        f"{t['wall_seconds']}s)"
    )
    print(
        f"latency:    p50 {lat['p50'] * 1000:.1f}ms  "
        f"p90 {lat['p90'] * 1000:.1f}ms  p99 {lat['p99'] * 1000:.1f}ms  "
        f"({lat['samples']} samples)"
    )
    print(
        f"saturation: {sat['accepted_202']}x202 + {sat['rejected_429']}x429 "
        f"from a {sat['burst']}-deep burst into a "
        f"{sat['queue_size']}-slot queue"
    )
    print(f"wrote {args.out}")
    if args.check:
        problems = []
        if t["verdicts_per_sec"] < args.min_throughput:
            problems.append(
                f"throughput {t['verdicts_per_sec']:.1f}/s below "
                f"{args.min_throughput}/s floor"
            )
        if t["failed"] or t["verdict_mismatches"]:
            problems.append(
                f"{t['failed']} failed / {t['verdict_mismatches']} "
                f"mismatched verdicts"
            )
        if not sat["rejected_429"] or not sat["accepted_202"]:
            problems.append("saturation burst did not split into 202s + 429s")
        if not sat["drained_after_resume"]:
            problems.append("daemon did not drain after resume")
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        if problems:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
