"""Measurement of the timeline recorder's overhead.

The race-forensics recorder promises to be non-perturbing: it observes
the execution through the same :class:`~repro.runtime.ExecutionMonitor`
hooks every other monitor uses, keeps only logical timestamps, and does
all export work (Chrome trace, happens-before graph, HTML) after the
run finishes.  This benchmark quantifies what the recorder costs by
timing a mixed workload — one racy and two race-free benchmarks at the
``simsmall`` scale — under three configurations:

* ``forensics_off``  — the baseline: ``run_clean`` with no recorder.
* ``timeline_on``    — a :class:`TimelineRecorder` attached (plus the
  :class:`RaceContextMonitor` it implies); no exports rendered.  This
  is the always-on recording cost and carries the overhead budget.
* ``full_export``    — recording plus all three exports rendered
  per run (Chrome trace, HB graph + DOT, HTML).  Export cost is
  post-run and unbudgeted; it is reported for context.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_forensics.py --out BENCH_forensics.json

``--check`` (release checklist) fails if the recording overhead
(``timeline_on``, exports off) exceeds 1.15x, or if repeated recorded
runs do not produce byte-identical timeline payloads.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List

from repro.clean import run_clean
from repro.obs import (
    TimelineRecorder,
    build_hb_graph,
    chrome_trace,
    hb_graph_dot,
    render_html,
)
from repro.workloads import build_program
from repro.workloads.suite import get_benchmark

# One racy run (dedup@seed0 races deterministically) and two race-free
# runs: a mix of sync-heavy and compute-heavy kernels.
WORKLOAD = [
    ("dedup", True),
    ("lu_ncb", False),
    ("dedup", False),
]
SCALE = "simsmall"
BUDGET = 1.15


def _run_suite(mode: str) -> List[Dict[str, Any]]:
    payloads: List[Dict[str, Any]] = []
    for name, racy in WORKLOAD:
        program = build_program(
            get_benchmark(name), scale=SCALE, racy=racy, seed=0
        )
        if mode == "forensics_off":
            run_clean(program)
            continue
        recorder = TimelineRecorder(label=name)
        run_clean(program, timeline=recorder)
        payload = recorder.to_payload()
        payloads.append(payload)
        if mode == "full_export":
            graph = build_hb_graph(payload)
            chrome_trace(payload)
            hb_graph_dot(graph)
            render_html(payload, graph=graph)
    return payloads


def _timed(mode: str, repeats: int) -> Dict[str, Any]:
    best = float("inf")
    fingerprints = set()
    events = segments = edges = 0
    for _ in range(repeats):
        start = time.perf_counter()
        payloads = _run_suite(mode)
        best = min(best, time.perf_counter() - start)
        if payloads:
            fingerprints.add(json.dumps(payloads, sort_keys=True))
            events = sum(len(p["events"]) for p in payloads)
            segments = sum(len(p["segments"]) for p in payloads)
            edges = sum(len(p["edges"]) for p in payloads)
    return {
        "seconds": best,
        "deterministic": len(fingerprints) <= 1,
        "events": events,
        "segments": segments,
        "edges": edges,
    }


def run_benchmarks(repeats: int) -> Dict[str, Any]:
    passes = {
        mode: _timed(mode, repeats)
        for mode in ("forensics_off", "timeline_on", "full_export")
    }
    base = passes["forensics_off"]["seconds"]
    overheads = {
        name: p["seconds"] / base
        for name, p in passes.items()
        if name != "forensics_off"
    }
    return {
        "benchmark": "race_forensics",
        "workload": {
            "runs": [f"{n}@{'racy' if r else 'clean'}" for n, r in WORKLOAD],
            "scale": SCALE,
            "repeats": repeats,
        },
        "seconds": {k: v["seconds"] for k, v in passes.items()},
        "overheads": overheads,
        "budget": {"timeline_on": BUDGET},
        "recorded": {
            k: {kk: v[kk] for kk in ("events", "segments", "edges")}
            for k, v in passes.items()
            if k != "forensics_off"
        },
        "deterministic": all(
            p["deterministic"] for p in passes.values()
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per configuration (best-of)")
    parser.add_argument("--out", default="BENCH_forensics.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if recording overhead exceeds the 1.15x budget or "
             "repeated runs produce different timeline payloads",
    )
    args = parser.parse_args(argv)

    report = run_benchmarks(args.repeats)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    secs = report["seconds"]
    over = report["overheads"]
    print(f"forensics off (baseline):  {secs['forensics_off']:.3f}s")
    print(f"timeline recording:        {secs['timeline_on']:.3f}s  "
          f"-> {over['timeline_on']:.2f}x (budget {BUDGET:.2f}x)")
    print(f"recording + all exports:   {secs['full_export']:.3f}s  "
          f"-> {over['full_export']:.2f}x")
    print(f"wrote {args.out}")
    if args.check:
        if not report["deterministic"]:
            print("FAIL: repeated recorded runs produced different "
                  "timeline payloads", file=sys.stderr)
            return 1
        if over["timeline_on"] > BUDGET:
            print(f"FAIL: timeline recording overhead "
                  f"{over['timeline_on']:.2f}x above {BUDGET:.2f}x budget",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
