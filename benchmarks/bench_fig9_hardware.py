"""Benchmark E6 — Figure 9: hardware-supported detection slowdown."""

from repro.experiments import fig9_hardware


def test_fig9_hardware(benchmark, hw_traces):
    result = benchmark.pedantic(
        lambda: fig9_hardware.run(traces=hw_traces), rounds=1, iterations=1
    )
    slowdowns = dict(zip(result.column("benchmark"), result.column("slowdown")))
    mean = sum(slowdowns.values()) / len(slowdowns)
    assert 1.03 < mean < 1.30                            # paper: 10.4%
    assert max(slowdowns, key=slowdowns.get) == "dedup"  # paper: 46.7%
