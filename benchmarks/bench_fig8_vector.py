"""Benchmark E4 — Figure 8: vectorization impact."""

from repro.experiments import fig8_vector


def test_fig8_vector(benchmark):
    result = benchmark.pedantic(
        lambda: fig8_vector.run(scale="test"), rounds=1, iterations=1
    )
    for row in result.rows:
        assert row[2] >= row[1], row[0]  # non-vectorized never faster
