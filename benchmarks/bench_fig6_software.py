"""Benchmark E2 — Figure 6: software-only CLEAN slowdown breakdown."""

from repro.experiments import fig6_software


def test_fig6_software(benchmark):
    result = benchmark.pedantic(
        lambda: fig6_software.run(scale="test"), rounds=1, iterations=1
    )
    detection = result.column("detection only")
    full = result.column("full CLEAN")
    assert 4.5 < sum(detection) / len(detection) < 7.5  # paper: 5.8x
    assert 6.0 < sum(full) / len(full) < 10.0           # paper: 7.8x
