"""Benchmark E7 — Figure 10: access breakdowns."""

from repro.experiments import fig10_breakdown


def test_fig10_breakdown(benchmark, hw_traces):
    result = benchmark.pedantic(
        lambda: fig10_breakdown.run(traces=hw_traces), rounds=1, iterations=1
    )
    expanded = dict(zip(result.column("benchmark"), result.column("expanded")))
    assert expanded["dedup"] > 50.0  # dedup: mostly expanded lines
    assert max(result.column("expand")) < 0.1  # expansions are rare
