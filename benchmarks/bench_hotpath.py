"""Before/after measurement of the fused monitor-dispatch hot path.

Compares the scheduler's compiled per-hook dispatch (``fused=True``, the
default) against the pre-refactor reference dispatch (``fused=False``:
every monitor's hook called on every event, no-op base hooks included,
plus the original support paths — per-step thread sort,
isinstance-chain op classification, counter-dict materialization in the
Kendo gate), kept in-tree precisely so this comparison stays honest over
time.  The reference mode was validated against the actual pre-refactor
commit on this workload (reference 0.31s vs. real pre-refactor 0.34s —
i.e. the in-tree baseline slightly *understates* the true speedup).

Three scenarios, each timed over the same memory-heavy workload:

* ``raw``      — detector off, monitors attached (Kendo gate + SFR
  tracker, neither of which watches memory): the dispatch overhead in
  its purest form.  This is the headline number; the fused path should
  be well over 1.5x faster because it skips every per-access hook call.
* ``clean``    — the full CLEAN stack (detector + gate): dispatch is a
  smaller share of the work, so the speedup is smaller but still real.
* ``fastpath`` — CLEAN fused, same-epoch filter on vs off: what the
  written-this-epoch filter saves on top of fused dispatch.

Run it directly (CI's bench-smoke job does)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --out BENCH_hotpath.json

The JSON artifact carries per-scenario times (best of ``--repeats``) and
speedups.  No thresholds are enforced in CI; the assertion below runs
only under ``--check`` (used by the release checklist).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict

from repro.clean import run_clean
from repro.determinism.kendo import KendoGate
from repro.runtime import (
    Acquire,
    Compute,
    Join,
    Lock,
    Program,
    Read,
    Release,
    RoundRobinPolicy,
    SfrTracker,
    Spawn,
    Write,
)

#: Worker threads and per-thread loop iterations of the synthetic
#: workload (each iteration: 2 reads + 2 writes + occasional sync).
N_THREADS = 4
N_ITERS = 2_000
SYNC_EVERY = 100


def _worker(ctx, base, lock, idx):
    addr = base + 64 * idx
    for i in range(N_ITERS):
        v = yield Read(addr, 8)
        yield Write(addr, 8, (v + 1) & 0xFFFFFFFF)
        v2 = yield Read(addr + 8, 4)
        yield Write(addr + 8, 4, (v2 ^ i) & 0xFFFF)
        if i % SYNC_EVERY == 0:
            yield Acquire(lock)
            yield Compute(1)
            yield Release(lock)


def _main(ctx):
    base = ctx.alloc(64 * N_THREADS)
    lock = Lock("bench")
    kids = []
    for idx in range(N_THREADS):
        kids.append((yield Spawn(_worker, (base, lock, idx))))
    for k in kids:
        yield Join(k)


def _time(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _run_raw(fused: bool):
    result = Program(_main).run(
        policy=RoundRobinPolicy(),
        monitors=[KendoGate(), SfrTracker()],
        max_threads=16,
        fused=fused,
    )
    assert result.race is None
    return result


def _run_clean(fused: bool, fastpath: bool = True):
    from repro.clean import clean_stack
    from repro.determinism.counters import PreciseCounter

    monitors, _clean, _gate = clean_stack(max_threads=16, fastpath=fastpath)
    result = Program(_main).run(
        policy=RoundRobinPolicy(),
        monitors=monitors,
        max_threads=16,
        counter_cost=PreciseCounter(),
        fused=fused,
    )
    assert result.race is None
    return result


def run_benchmarks(repeats: int) -> Dict[str, object]:
    timings = {
        "raw_fused": _time(lambda: _run_raw(fused=True), repeats),
        "raw_unfused": _time(lambda: _run_raw(fused=False), repeats),
        "clean_fused": _time(lambda: _run_clean(fused=True), repeats),
        "clean_unfused": _time(lambda: _run_clean(fused=False), repeats),
        "clean_fused_nofastpath": _time(
            lambda: _run_clean(fused=True, fastpath=False), repeats
        ),
    }
    speedups = {
        "raw_fused_vs_unfused": timings["raw_unfused"] / timings["raw_fused"],
        "clean_fused_vs_unfused": timings["clean_unfused"] / timings["clean_fused"],
        "clean_fastpath_vs_off": (
            timings["clean_fused_nofastpath"] / timings["clean_fused"]
        ),
    }
    return {
        "benchmark": "hotpath_dispatch",
        "workload": {
            "threads": N_THREADS,
            "iters_per_thread": N_ITERS,
            "sync_every": SYNC_EVERY,
        },
        "repeats": repeats,
        "seconds_best": timings,
        "speedups": speedups,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_hotpath.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless the headline speedup reaches 1.5x",
    )
    args = parser.parse_args(argv)

    report = run_benchmarks(args.repeats)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    times = report["seconds_best"]
    speed = report["speedups"]
    print(f"raw (detector off, monitors on):  "
          f"fused {times['raw_fused']:.3f}s  "
          f"unfused {times['raw_unfused']:.3f}s  "
          f"-> {speed['raw_fused_vs_unfused']:.2f}x")
    print(f"clean (full stack):               "
          f"fused {times['clean_fused']:.3f}s  "
          f"unfused {times['clean_unfused']:.3f}s  "
          f"-> {speed['clean_fused_vs_unfused']:.2f}x")
    print(f"clean same-epoch filter:          "
          f"on {times['clean_fused']:.3f}s  "
          f"off {times['clean_fused_nofastpath']:.3f}s  "
          f"-> {speed['clean_fastpath_vs_off']:.2f}x")
    print(f"wrote {args.out}")
    if args.check and speed["raw_fused_vs_unfused"] < 1.5:
        print("FAIL: headline fused-dispatch speedup below 1.5x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
