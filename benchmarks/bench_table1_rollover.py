"""Benchmark E5 — Table 1: clock-rollover impact."""

from repro.experiments import table1_rollover


def test_table1_rollover(benchmark):
    result = benchmark.pedantic(
        lambda: table1_rollover.run(scale="simlarge"), rounds=1, iterations=1
    )
    assert set(result.column("benchmark")) == set(table1_rollover.PAPER_ROSTER)
