"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables/figures
(asserting its qualitative shape) under ``pytest-benchmark`` timing, so
``pytest benchmarks/ --benchmark-only`` both re-derives every result and
reports how long each harness takes.
"""

import pytest

from repro.experiments.traces import record_all_traces


@pytest.fixture(scope="session")
def hw_traces():
    """Traces for the hardware experiments, recorded once per session."""
    return record_all_traces(scale="test")
