"""Benchmarks A1-A3: the design-choice ablations (see DESIGN.md)."""

from repro.experiments import ablations


def test_a1_war_precision(benchmark, hw_traces):
    result = benchmark.pedantic(
        lambda: ablations.run_war_precision(traces=hw_traces),
        rounds=1,
        iterations=1,
    )
    assert max(result.column("precise")) > 2.0  # RADISH-class cost


def test_a2_atomicity(benchmark):
    result = benchmark.pedantic(
        lambda: ablations.run_atomicity(scale="test"), rounds=1, iterations=1
    )
    shares = [float(row[3].rstrip("%")) for row in result.rows]
    assert sum(shares) / len(shares) > 30.0


def test_a3_clock_width(benchmark):
    result = benchmark.pedantic(
        lambda: ablations.run_clock_width(scale="test"), rounds=1, iterations=1
    )
    rollovers = result.column("rollovers")
    assert rollovers == sorted(rollovers, reverse=True)
