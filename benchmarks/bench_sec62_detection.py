"""Benchmark E1 — Section 6.2.2: detection & determinism validation."""

from repro.experiments import sec62_detection


def test_sec62_detection(benchmark):
    result = benchmark.pedantic(
        lambda: sec62_detection.run(scale="test", runs=3),
        rounds=1,
        iterations=1,
    )
    assert any("17/17" in line for line in result.summary)
    assert any("deterministic: True" in line for line in result.summary)
