"""Benchmark E3 — Figure 7: shared-access frequency."""

from repro.experiments import fig7_freq


def test_fig7_freq(benchmark):
    result = benchmark.pedantic(
        lambda: fig7_freq.run(scale="test"), rounds=1, iterations=1
    )
    densities = dict(
        zip(result.column("benchmark"), result.column("shared-access density"))
    )
    top2 = sorted(densities, key=densities.get, reverse=True)[:2]
    assert set(top2) == {"lu_cb", "lu_ncb"}  # the paper's outliers
