"""Measurement of the cross-process telemetry pipeline's overhead.

The telemetry pipeline promises "observability you can leave on": every
job runs inside a fresh telemetry scope, publishes its detector counters
and spans, and optionally attributes every race check to its address.
This benchmark quantifies what that costs by timing one experiment's
worth of jobs (the Figure-7 sweep of the fast report — 25 independent
software-CLEAN runs) under three configurations:

* ``telemetry_off``   — ``job_telemetry=False``: the pre-pipeline
  baseline, jobs run bare.
* ``telemetry_on``    — the default: per-job registry + spans collected
  and merged back in submission order.
* ``sites_on``        — telemetry plus exact (``sample_every=1``)
  hot-site attribution in the detector hot path.
* ``sites_sampled``   — hot-site attribution at ``sample_every=16``,
  the cheap always-on setting.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_obs.py --out BENCH_obs.json

The JSON artifact carries per-configuration wall times, the relative
overheads, and the merged counter totals (which must be identical for
every telemetry-on pass — the merge is deterministic).  ``--check``
(release checklist) fails if telemetry overhead exceeds the budget or
the telemetry-on passes disagree on the merged totals.

A second microbenchmark times labeled vs. flat counters on the pattern
hot paths actually use — a held instrument handle incremented in a
tight loop (the service caches one handle per (counter, tenant)).
``--check`` additionally gates handle-held labeled increments at
<= 1.25x flat.  The per-call lookup path (``registry.inc`` with a
``labels=`` dict, which canonicalizes the label set every call) is
also reported, un-gated: it exists for cold paths and tests.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict

from repro.exec import JobRunner
from repro.experiments.report import build_jobs
from repro.obs import MetricsRegistry, Tracer


def _fig7_jobs():
    return [j for j in build_jobs(fast=True) if j.group == "fig7"]


def _timed(repeats: int, **runner_kwargs: Any) -> Dict[str, Any]:
    jobs = _fig7_jobs()
    best = float("inf")
    merged: Dict[str, Any] = {}
    stats: Dict[str, Any] = {}
    for _ in range(repeats):
        registry = MetricsRegistry()
        runner = JobRunner(registry=registry, tracer=Tracer(), **runner_kwargs)
        start = time.perf_counter()
        results = runner.run(jobs)
        best = min(best, time.perf_counter() - start)
        assert all(r.ok for r in results), [
            r.error for r in results if not r.ok
        ]
        merged = {
            name: value
            for name, value in registry.snapshot().items()
            if name.startswith("clean.")
        }
        stats = dict(runner.stats)
    return {"seconds": best, "clean_totals": merged, "stats": stats}


def _bench_labeled_counters(
    iterations: int = 200_000, repeats: int = 3
) -> Dict[str, Any]:
    """Best-of wall time for flat, labeled-handle and labeled-lookup
    counter increments (per-op seconds and ratios vs. flat)."""

    def flat_pass() -> float:
        registry = MetricsRegistry()
        counter = registry.counter("bench.flat")
        start = time.perf_counter()
        for _ in range(iterations):
            counter.inc()
        return time.perf_counter() - start

    def handle_pass() -> float:
        registry = MetricsRegistry()
        counter = registry.counter("bench.labeled", labels={"tenant": "t1"})
        start = time.perf_counter()
        for _ in range(iterations):
            counter.inc()
        return time.perf_counter() - start

    def lookup_pass() -> float:
        registry = MetricsRegistry()
        labels = {"tenant": "t1"}
        start = time.perf_counter()
        for _ in range(iterations):
            registry.inc("bench.labeled", labels=labels)
        return time.perf_counter() - start

    best = {"flat": float("inf"), "labeled_handle": float("inf"),
            "labeled_lookup": float("inf")}
    for _ in range(repeats):
        best["flat"] = min(best["flat"], flat_pass())
        best["labeled_handle"] = min(best["labeled_handle"], handle_pass())
        best["labeled_lookup"] = min(best["labeled_lookup"], lookup_pass())
    return {
        "iterations": iterations,
        "seconds": best,
        "ns_per_op": {k: v / iterations * 1e9 for k, v in best.items()},
        "ratios": {
            "labeled_handle": best["labeled_handle"] / best["flat"],
            "labeled_lookup": best["labeled_lookup"] / best["flat"],
        },
    }


def run_benchmarks(repeats: int) -> Dict[str, Any]:
    passes = {
        "telemetry_off": _timed(repeats, job_telemetry=False),
        "telemetry_on": _timed(repeats),
        "sites_on": _timed(repeats, profile_sites=True),
        "sites_sampled": _timed(
            repeats, profile_sites=True, sample_every=16
        ),
    }
    base = passes["telemetry_off"]["seconds"]
    overheads = {
        name: p["seconds"] / base
        for name, p in passes.items()
        if name != "telemetry_off"
    }
    return {
        "benchmark": "telemetry_pipeline",
        "workload": {"jobs": len(_fig7_jobs()), "group": "fig7",
                     "repeats": repeats},
        "seconds": {k: v["seconds"] for k, v in passes.items()},
        "overheads": overheads,
        "clean_totals": {
            k: v["clean_totals"] for k, v in passes.items()
        },
        "labeled_counters": _bench_labeled_counters(repeats=repeats),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per configuration (best-of)")
    parser.add_argument("--out", default="BENCH_obs.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if telemetry overhead exceeds budget or merged "
             "totals diverge between telemetry-on passes",
    )
    args = parser.parse_args(argv)

    report = run_benchmarks(args.repeats)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    secs = report["seconds"]
    over = report["overheads"]
    print(f"telemetry off (baseline):      {secs['telemetry_off']:.3f}s")
    print(f"telemetry on (default):        {secs['telemetry_on']:.3f}s  "
          f"-> {over['telemetry_on']:.2f}x")
    print(f"hot sites, exact:              {secs['sites_on']:.3f}s  "
          f"-> {over['sites_on']:.2f}x")
    print(f"hot sites, sampled (1/16):     {secs['sites_sampled']:.3f}s  "
          f"-> {over['sites_sampled']:.2f}x")
    labeled = report["labeled_counters"]
    ns = labeled["ns_per_op"]
    ratios = labeled["ratios"]
    print(f"counter, flat:                 {ns['flat']:.0f}ns/op")
    print(f"counter, labeled (handle):     {ns['labeled_handle']:.0f}ns/op  "
          f"-> {ratios['labeled_handle']:.2f}x")
    print(f"counter, labeled (lookup):     {ns['labeled_lookup']:.0f}ns/op  "
          f"-> {ratios['labeled_lookup']:.2f}x  (un-gated)")
    print(f"wrote {args.out}")
    if args.check:
        totals = report["clean_totals"]
        if not totals["telemetry_on"]:
            print("FAIL: telemetry-on pass merged no clean.* counters",
                  file=sys.stderr)
            return 1
        for name in ("sites_on", "sites_sampled"):
            if totals[name] != totals["telemetry_on"]:
                print(f"FAIL: merged clean.* totals diverge in {name}",
                      file=sys.stderr)
                return 1
        if totals["telemetry_off"]:
            print("FAIL: telemetry-off pass leaked clean.* counters",
                  file=sys.stderr)
            return 1
        # Generous bound: the per-job scope + merge must stay cheap.
        if over["telemetry_on"] > 2.0:
            print("FAIL: telemetry-on overhead above 2x", file=sys.stderr)
            return 1
        # A held labeled handle is the same Counter object as a flat
        # one — the label cost was paid once at registration.
        if ratios["labeled_handle"] > 1.25:
            print(
                f"FAIL: handle-held labeled counter overhead "
                f"{ratios['labeled_handle']:.2f}x above 1.25x budget",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
