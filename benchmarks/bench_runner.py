"""Measurement of the parallel experiment runner (``repro.exec``).

Times one experiment's worth of per-benchmark jobs (the Figure-7 sweep
of the fast report — 25 independent software-CLEAN runs) under four
configurations:

* ``serial``         — in-process execution, no cache: the pre-runner
  baseline (exactly what the old ``fig7_freq.run()`` loop did).
* ``parallel``       — ``--jobs N`` worker processes, no cache.  The
  speedup here scales with available cores; on a single-core container
  it only measures the process-isolation overhead.
* ``cold_cache``     — worker processes plus a fresh checkpoint store
  (every job executes and writes its result file).
* ``warm_resume``    — the same store again: every job is served from
  its checkpoint, which is what an interrupted-then-restarted report
  costs.  This is the headline number — resume skips all recomputation
  regardless of core count.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_runner.py --out BENCH_runner.json

The JSON artifact carries per-configuration wall times, the runner's
own stats per pass, and the speedups.  ``--check`` (release checklist)
fails unless warm resume actually skipped every execution and beat the
serial pass.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import sys
import tempfile
import time
from typing import Dict

from repro.exec import CheckpointStore, JobRunner
from repro.experiments.report import build_jobs


def _fig7_jobs():
    return [j for j in build_jobs(fast=True) if j.group == "fig7"]


def _timed(runner: JobRunner) -> Dict[str, object]:
    jobs = _fig7_jobs()
    start = time.perf_counter()
    results = runner.run(jobs)
    elapsed = time.perf_counter() - start
    assert all(r.ok for r in results), [r.error for r in results if not r.ok]
    return {"seconds": elapsed, "stats": dict(runner.stats)}


def run_benchmarks(workers: int) -> Dict[str, object]:
    passes: Dict[str, Dict[str, object]] = {}
    passes["serial"] = _timed(JobRunner(workers=1))
    passes["parallel"] = _timed(JobRunner(workers=workers))
    with tempfile.TemporaryDirectory(prefix="bench-runner-") as cache:
        store = CheckpointStore(cache)
        passes["cold_cache"] = _timed(JobRunner(workers=workers, store=store))
        passes["warm_resume"] = _timed(JobRunner(workers=workers, store=store))
    serial = passes["serial"]["seconds"]
    speedups = {
        "parallel_vs_serial": serial / passes["parallel"]["seconds"],
        "warm_resume_vs_serial": serial / passes["warm_resume"]["seconds"],
    }
    return {
        "benchmark": "experiment_runner",
        "workload": {
            "jobs": len(_fig7_jobs()),
            "group": "fig7",
            "workers": workers,
            "cpus": multiprocessing.cpu_count(),
        },
        "seconds": {k: v["seconds"] for k, v in passes.items()},
        "runner_stats": {k: v["stats"] for k, v in passes.items()},
        "speedups": speedups,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default: CPU count, max 4)")
    parser.add_argument("--out", default="BENCH_runner.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless warm resume was fully cache-served and faster",
    )
    args = parser.parse_args(argv)
    workers = (
        args.jobs
        if args.jobs is not None
        else max(2, min(4, multiprocessing.cpu_count()))
    )

    report = run_benchmarks(workers)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    secs = report["seconds"]
    speed = report["speedups"]
    warm = report["runner_stats"]["warm_resume"]
    print(f"serial (in-process, no cache):   {secs['serial']:.3f}s")
    print(f"parallel ({workers} workers, no cache): {secs['parallel']:.3f}s  "
          f"-> {speed['parallel_vs_serial']:.2f}x")
    print(f"cold cache (execute + store):    {secs['cold_cache']:.3f}s")
    print(f"warm resume (all checkpointed):  {secs['warm_resume']:.3f}s  "
          f"-> {speed['warm_resume_vs_serial']:.2f}x "
          f"(executed={warm['executed']}, cached={warm['cache_hits']})")
    print(f"wrote {args.out}")
    if args.check:
        if warm["executed"] != 0:
            print("FAIL: warm resume re-executed jobs", file=sys.stderr)
            return 1
        if speed["warm_resume_vs_serial"] < 2.0:
            print("FAIL: warm-resume speedup below 2x", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
