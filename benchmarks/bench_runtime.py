"""Micro-benchmarks: cooperative-runtime and simulator throughput."""

from repro.clean import run_clean
from repro.hardware import SimConfig, simulate_trace
from repro.runtime import RoundRobinPolicy, TraceRecorder
from repro.workloads import build_program, get_benchmark


def test_scheduler_throughput(benchmark):
    """Bare runtime: no monitors attached."""
    spec = get_benchmark("fft")

    def run():
        return build_program(spec, scale="test").run(
            policy=RoundRobinPolicy(), max_threads=16
        )

    result = benchmark(run)
    assert result.race is None


def test_clean_monitored_throughput(benchmark):
    """Runtime + CLEAN detector + Kendo gate (the full software stack)."""
    spec = get_benchmark("fft")

    def run():
        return run_clean(
            build_program(spec, scale="test"),
            policy=RoundRobinPolicy(),
            max_threads=16,
        )

    result = benchmark(run)
    assert result.race is None


def test_hardware_sim_throughput(benchmark):
    """Trace-driven simulator with the race-check unit enabled."""
    spec = get_benchmark("fft")
    recorder = TraceRecorder()
    build_program(spec, scale="test").run(
        policy=RoundRobinPolicy(), monitors=[recorder], max_threads=16
    )
    trace = recorder.trace

    result = benchmark(lambda: simulate_trace(trace, SimConfig(detection=True)))
    assert result.cycles > 0
