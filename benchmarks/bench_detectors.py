"""Micro-benchmarks: per-access cost of CLEAN vs. the precise baselines.

This is the library-level ablation behind the paper's efficiency
argument (Section 3.2): CLEAN's check does strictly less work than
FastTrack (no read metadata, no WAR scan) and far less than the full
vector-clock detector (one comparison instead of O(threads)).  The
timings here are of *this library's* Python implementations; the paper's
absolute numbers come from the cost model, but the ordering
(CLEAN <= FastTrack << vector-clock) should hold even here.
"""

import random

import pytest

from repro.baselines import FastTrackDetector, VcRaceDetector
from repro.core import CleanDetector


def make_workload(n_ops=2000, n_addrs=64, seed=42):
    """A synchronization-free single-writer access script (no races)."""
    rng = random.Random(seed)
    ops = []
    for _ in range(n_ops):
        address = rng.randrange(n_addrs) * 8
        ops.append((rng.random() < 0.5, address))
    return ops


def drive(detector, ops):
    detector.spawn_root()
    for is_write, address in ops:
        if is_write:
            detector.check_write(0, address, 8)
        else:
            detector.check_read(0, address, 8)
    return detector


OPS = make_workload()


def test_clean_check_throughput(benchmark):
    benchmark(lambda: drive(CleanDetector(max_threads=8), OPS))


def test_fasttrack_check_throughput(benchmark):
    benchmark(lambda: drive(FastTrackDetector(max_threads=8), OPS))


def test_vc_check_throughput(benchmark):
    benchmark(lambda: drive(VcRaceDetector(max_threads=8), OPS))


def test_clean_scalar_vs_vectorized(benchmark):
    """The Section-4.4 fast path also helps the Python implementation."""
    benchmark(lambda: drive(CleanDetector(max_threads=8, vectorized=True), OPS))


def test_clean_no_vectorization(benchmark):
    benchmark(
        lambda: drive(CleanDetector(max_threads=8, vectorized=False), OPS)
    )
