"""Micro-benchmarks: per-access cost of CLEAN vs. the precise baselines.

This is the library-level ablation behind the paper's efficiency
argument (Section 3.2): CLEAN's check does strictly less work than
FastTrack (no read metadata, no WAR scan) and far less than the full
vector-clock detector (one comparison instead of O(threads)).  The
timings here are of *this library's* Python implementations; the paper's
absolute numbers come from the cost model, but the ordering
(CLEAN <= FastTrack << vector-clock) should hold even here.

Each detector variant is driven through a :class:`repro.exec.Job`
(:func:`detector_throughput` is the job function), so the same configs
the timed tests use can be fanned out by a :class:`repro.exec.JobRunner`
— and a crashing detector no longer kills the whole sweep, it just
yields a failed result (see ``test_sweep_survives_bad_detector``).
"""

import random

import pytest

from repro.baselines import FastTrackDetector, VcRaceDetector
from repro.core import CleanDetector
from repro.exec import Job, JobRunner
from repro.exec.job import run_job


def make_workload(n_ops=2000, n_addrs=64, seed=42):
    """A synchronization-free single-writer access script (no races)."""
    rng = random.Random(seed)
    ops = []
    for _ in range(n_ops):
        address = rng.randrange(n_addrs) * 8
        ops.append((rng.random() < 0.5, address))
    return ops


def drive(detector, ops):
    detector.spawn_root()
    for is_write, address in ops:
        if is_write:
            detector.check_write(0, address, 8)
        else:
            detector.check_read(0, address, 8)
    return detector


#: Detector factories by job-config name.
DETECTORS = {
    "clean": lambda vectorized: CleanDetector(
        max_threads=8, **({} if vectorized is None else {"vectorized": vectorized})
    ),
    "fasttrack": lambda vectorized: FastTrackDetector(max_threads=8),
    "vc": lambda vectorized: VcRaceDetector(max_threads=8),
}


def detector_throughput(
    detector, n_ops=2000, n_addrs=64, seed=42, vectorized=None
):
    """Job function: drive one detector over the scripted workload."""
    if detector not in DETECTORS:
        raise ValueError(f"unknown detector {detector!r}")
    ops = make_workload(n_ops=n_ops, n_addrs=n_addrs, seed=seed)
    drive(DETECTORS[detector](vectorized), ops)
    return {"detector": detector, "ops": n_ops}


def _job(detector, **config):
    return Job(
        fn="bench_detectors:detector_throughput",
        config={"detector": detector, **config},
        name=detector,
        group="detectors",
    )


def test_clean_check_throughput(benchmark):
    benchmark(lambda: run_job(_job("clean")))


def test_fasttrack_check_throughput(benchmark):
    benchmark(lambda: run_job(_job("fasttrack")))


def test_vc_check_throughput(benchmark):
    benchmark(lambda: run_job(_job("vc")))


def test_clean_scalar_vs_vectorized(benchmark):
    """The Section-4.4 fast path also helps the Python implementation."""
    benchmark(lambda: run_job(_job("clean", vectorized=True)))


def test_clean_no_vectorization(benchmark):
    benchmark(lambda: run_job(_job("clean", vectorized=False)))


def test_sweep_survives_bad_detector():
    """One broken job yields a failed result; the rest of the sweep runs."""
    jobs = [_job("clean"), _job("no-such-detector"), _job("vc")]
    results = JobRunner(retries=0).run(jobs)
    assert [r.job.name for r in results] == ["clean", "no-such-detector", "vc"]
    assert results[0].ok and results[2].ok
    assert not results[1].ok
    assert "unknown detector" in results[1].error
