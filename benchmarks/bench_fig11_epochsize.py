"""Benchmark E8 — Figure 11: 1-byte / 4-byte epoch alternatives."""

from repro.experiments import fig11_epochsize


def test_fig11_epochsize(benchmark, hw_traces):
    result = benchmark.pedantic(
        lambda: fig11_epochsize.run(traces=hw_traces), rounds=1, iterations=1
    )
    clean = dict(zip(result.column("benchmark"), result.column("CLEAN")))
    wide = dict(zip(result.column("benchmark"), result.column("4B epochs")))
    deltas = {k: wide[k] / clean[k] for k in clean}
    worst3 = sorted(deltas, key=deltas.get, reverse=True)[:3]
    assert set(worst3) == {"ocean_cp", "ocean_ncp", "radix"}
