"""Throughput of the batch-first offline trace analysis.

One synthetic trace — four threads hammering disjoint slabs with sparse
lock traffic, the shape the batch lane is built for (long
synchronization-free runs) — replayed through the three analysis modes
of :func:`repro.analysis.analyze_trace`:

* ``scalar``  — the reference path: every access through the monitor's
  per-event ``_check_one``.
* ``batch``   — whole runs through ``CleanMonitor.check_block``: the
  same-epoch majority resolved in one vectorized pass over the flat
  epoch tables, scalar fallback only for the conflict minority.
* ``sharded`` — the address space split across worker processes
  (``JobRunner``), per-shard epoch tables, deterministic merge.

All three must agree on verdict and every ``clean.*`` counter — the
benchmark asserts it before reporting a single number.  The JSON
artifact carries events/sec per mode, speedups over scalar, and the
host CPU count: sharded mode pays worker-process spawns plus a full
in-process counting replay, so on a single-CPU container it cannot
approach the in-process batch number — the artifact records the CPU
count precisely so the sharded figure can be read in context.

Run it directly (CI's bench-smoke job does)::

    PYTHONPATH=src python benchmarks/bench_batch.py --out BENCH_batch.json

``--check`` (release checklist) fails unless the batch path reaches 2x
scalar throughput.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Dict

from repro.analysis import analyze_trace
from repro.determinism.counters import PreciseCounter
from repro.runtime import (
    Acquire,
    Join,
    Lock,
    Program,
    Read,
    Release,
    RoundRobinPolicy,
    Spawn,
    TraceRecorder,
    Write,
)

#: Worker threads, per-thread iterations (4 accesses each) and accesses
#: between lock round trips: sparse syncs give the batch lane the long
#: synchronization-free runs it vectorizes.
N_THREADS = 4
N_ITERS = 1_500
SYNC_EVERY = 250


def _worker(ctx, base, lock, idx):
    addr = base + 4096 * idx
    for i in range(N_ITERS):
        slot = addr + 8 * (i % 64)
        yield Write(slot, 8, i & 0xFFFFFFFF)
        v = yield Read(slot, 8)
        yield Write(slot + 8, 4, (v ^ i) & 0xFFFF)
        yield Read(slot + 8, 4)
        if i % SYNC_EVERY == 0:
            yield Acquire(lock)
            yield Release(lock)


def _main(ctx):
    base = ctx.alloc(4096 * N_THREADS)
    lock = Lock("bench")
    kids = []
    for idx in range(N_THREADS):
        kids.append((yield Spawn(_worker, (base, lock, idx))))
    for k in kids:
        yield Join(k)


def _record(path: str) -> int:
    """Record the workload record-only; returns the trace's event count."""
    recorder = TraceRecorder()
    result = Program(_main).run(
        policy=RoundRobinPolicy(),
        monitors=[recorder],
        max_threads=16,
        counter_cost=PreciseCounter(),
    )
    assert result.race is None
    recorder.trace.save(path)
    return recorder.trace.total_events


def _time_mode(path: str, mode: str, repeats: int, **kwargs):
    best = float("inf")
    report = None
    for _ in range(repeats):
        start = time.perf_counter()
        report = analyze_trace(path, mode=mode, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, report


def run_benchmarks(repeats: int) -> Dict[str, object]:
    cpus = os.cpu_count() or 1
    workers = min(2, cpus)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.trace")
        events = _record(path)
        scalar_s, scalar = _time_mode(path, "scalar", repeats)
        batch_s, batch = _time_mode(path, "batch", repeats)
        sharded_s, sharded = _time_mode(
            path, "sharded", repeats, shards=workers, workers=workers
        )
    # Equivalence first, numbers second: a fast wrong answer is no answer.
    for other in (batch, sharded):
        assert other.racy == scalar.racy, other.mode
        assert other.counters == scalar.counters, other.mode
    timings = {"scalar": scalar_s, "batch": batch_s, "sharded": sharded_s}
    return {
        "benchmark": "batch_analysis",
        "workload": {
            "threads": N_THREADS,
            "iters_per_thread": N_ITERS,
            "sync_every": SYNC_EVERY,
            "trace_events": events,
        },
        "host": {"cpu_count": cpus, "sharded_workers": workers},
        "repeats": repeats,
        "seconds_best": timings,
        "events_per_sec": {
            mode: events / seconds for mode, seconds in timings.items()
        },
        "speedups": {
            "batch_vs_scalar": scalar_s / batch_s,
            "sharded_vs_scalar": scalar_s / sharded_s,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default="BENCH_batch.json")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail unless check_block replay reaches 2x scalar",
    )
    args = parser.parse_args(argv)

    report = run_benchmarks(args.repeats)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    times = report["seconds_best"]
    rates = report["events_per_sec"]
    speed = report["speedups"]
    print(f"scalar:   {times['scalar']:.3f}s  ({rates['scalar']:,.0f} ev/s)")
    print(f"batch:    {times['batch']:.3f}s  ({rates['batch']:,.0f} ev/s)  "
          f"-> {speed['batch_vs_scalar']:.2f}x")
    print(f"sharded:  {times['sharded']:.3f}s  ({rates['sharded']:,.0f} ev/s)  "
          f"-> {speed['sharded_vs_scalar']:.2f}x  "
          f"({report['host']['sharded_workers']} workers, "
          f"{report['host']['cpu_count']} CPUs)")
    print(f"wrote {args.out}")
    if args.check and speed["batch_vs_scalar"] < 2.0:
        print("FAIL: check_block replay below 2x scalar", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
