"""The Section-3.1.2 debugging workflow, end to end.

CLEAN stops an execution on the *first* WAW/RAW race — which is great in
production, but a developer then wants the full picture.  The paper's
recipe: re-run with a precise detector "to systematically detect all
races".  This example shows the whole loop with the library's tooling:

1. run the buggy program under CLEAN with a *recording* scheduler until
   a schedule races;
2. print the two-sided race report (who raced with whom, at which
   operation, in which synchronization-free region);
3. replay the *exact same interleaving* with the precise FastTrack
   oracle attached and enumerate every race of that schedule — including
   the WAR races CLEAN deliberately does not stop for.

Run:  python examples/race_debugging.py
"""

from repro.baselines import FastTrackDetector
from repro.clean import CleanMonitor
from repro.core import CleanDetector
from repro.diagnostics import RaceContextMonitor
from repro.runtime import (
    Acquire,
    Compute,
    Join,
    Lock,
    Program,
    RandomPolicy,
    Read,
    RecordingPolicy,
    Release,
    ReplayPolicy,
    RoundRobinPolicy,
    Spawn,
    Write,
)


def buggy_accounts():
    """Three tellers move money between two accounts; one code path
    forgot the lock (a classic partially-fixed race)."""
    lock = Lock("ledger")

    def careful_teller(ctx, a, b, amount):
        for _ in range(2):
            yield Acquire(lock)
            balance = yield Read(a, 8)
            yield Write(a, 8, balance - amount)
            balance = yield Read(b, 8)
            yield Write(b, 8, balance + amount)
            yield Release(lock)
            yield Compute(4)

    def sloppy_teller(ctx, a, b, amount):
        yield Compute(2)
        balance = yield Read(a, 8)          # forgot the lock!
        yield Write(a, 8, balance - amount)
        balance = yield Read(b, 8)
        yield Write(b, 8, balance + amount)

    def main(ctx):
        a = ctx.alloc(8)
        b = ctx.alloc(8)
        yield Write(a, 8, 1000)
        yield Write(b, 8, 1000)
        kids = [
            (yield Spawn(careful_teller, (a, b, 10))),
            (yield Spawn(careful_teller, (b, a, 25))),
            (yield Spawn(sloppy_teller, (a, b, 100))),
        ]
        for kid in kids:
            yield Join(kid)
        total = (yield Read(a, 8)) + (yield Read(b, 8))
        return total

    return Program(main)


def main():
    # Step 1: hunt for a racing schedule under CLEAN, recording it.
    raced_log = None
    for seed in range(200):
        recording = RecordingPolicy(RandomPolicy(seed))
        context = RaceContextMonitor()
        result = buggy_accounts().run(
            policy=recording,
            monitors=[context, CleanMonitor(detector=CleanDetector(max_threads=8))],
            max_threads=8,
        )
        if result.race is not None:
            raced_log = recording.log
            print(f"schedule seed {seed} raced; CLEAN stopped the run:\n")
            print(context.render(result.race))
            break
    assert raced_log is not None, "no racing schedule found"

    # Step 2: replay the SAME interleaving with the precise oracle.
    oracle = FastTrackDetector(max_threads=8, record_only=True)
    buggy_accounts().run(
        policy=ReplayPolicy(raced_log, fallback=RoundRobinPolicy()),
        monitors=[CleanMonitor(detector=oracle)],
        max_threads=8,
    )
    print("\nreplaying the identical interleaving with FastTrack attached:")
    for kind, count in sorted(oracle.race_kinds().items()):
        print(f"   {kind}: {count} race(s)")
    print(
        "\nCLEAN stopped at the first WAW/RAW; the precise replay shows"
        "\neverything on that schedule (note the WARs CLEAN skips by design)."
    )


if __name__ == "__main__":
    main()
