"""Deterministic replicas: the Section-3.1.2 fault-tolerance scenario.

The paper argues CLEAN simplifies multithreaded replica-based fault
tolerance: replicas that finish produce *the same* result (deterministic
exception-free runs), and replicas that hit a race raise an exception —
so a quorum can cleanly separate "correct" from "incorrect" executions
instead of voting over divergent outputs.

We build a small multithreaded order-matching engine (two trader threads
and a settlement thread sharing an order book under locks), run N
replicas of it under CLEAN with *different schedules* (modelling replica
timing divergence), and show:

* without deterministic synchronization, replicas legitimately diverge
  (lock acquisition order differs), defeating naive voting;
* under CLEAN, every finishing replica agrees bit-for-bit;
* when a bug drops a lock (the racy variant), replicas do not silently
  diverge — they raise race exceptions that the quorum can discard.

Run:  python examples/deterministic_replicas.py
"""

from collections import Counter

from repro import run_clean
from repro.runtime import (
    Acquire,
    Compute,
    Join,
    Lock,
    Output,
    Program,
    RandomPolicy,
    Read,
    Release,
    Spawn,
    Write,
)

N_REPLICAS = 8
ORDERS_PER_TRADER = 5


def matching_engine(buggy: bool):
    """Build the engine program; ``buggy=True`` drops one lock."""
    book_lock = Lock("book")

    def trader(ctx, book, cash, trader_id, prices):
        for i, price in enumerate(prices):
            yield Compute(3 + trader_id)
            skip_lock = buggy and trader_id == 2 and i == 2
            if not skip_lock:
                yield Acquire(book_lock)
            depth = yield Read(book, 4)
            yield Write(book, 4, depth + price)       # post the order
            balance = yield Read(cash, 8)
            yield Write(cash, 8, balance + price)
            if not skip_lock:
                yield Release(book_lock)

    def settlement(ctx, book, cash, done_flag):
        settled = 0
        for _ in range(ORDERS_PER_TRADER):
            yield Compute(10)
            yield Acquire(book_lock)
            depth = yield Read(book, 4)
            settled ^= depth
            yield Release(book_lock)
        yield Output(("settled-hash", settled))
        return settled

    def main(ctx):
        book = ctx.alloc(4)
        cash = ctx.alloc(8)
        done = ctx.alloc(1)
        traders = []
        for trader_id, prices in enumerate(
            ([11, 3, 7, 2, 9], [5, 13, 1, 8, 4]), start=1
        ):
            kid = yield Spawn(trader, (book, cash, trader_id, prices))
            traders.append(kid)
        settler = yield Spawn(settlement, (book, cash, done))
        for kid in traders:
            yield Join(kid)
        digest = yield Join(settler)
        final_depth = yield Read(book, 4)
        final_cash = yield Read(cash, 8)
        yield Output(("final", final_depth, final_cash, digest))
        return (final_depth, final_cash, digest)

    return Program(main)


def run_replicas(buggy, deterministic):
    outcomes = []
    for replica in range(N_REPLICAS):
        result = run_clean(
            matching_engine(buggy),
            policy=RandomPolicy(1000 + replica),
            deterministic=deterministic,
        )
        if result.race is not None:
            outcomes.append(("EXCEPTION", result.race.kind))
        else:
            outcomes.append(("OK", result.thread_results[0]))
    return outcomes


def show(title, outcomes):
    print(title)
    for outcome, count in Counter(outcomes).most_common():
        print(f"   {count}x {outcome}")


def main():
    print(f"{N_REPLICAS} replicas of the matching engine, divergent timing\n")

    show("1) correct engine, nondeterministic synchronization:",
         run_replicas(buggy=False, deterministic=False))
    print("   -> replicas may disagree; a voter cannot tell which is right\n")

    outcomes = run_replicas(buggy=False, deterministic=True)
    show("2) correct engine under CLEAN (deterministic sync):", outcomes)
    assert len(set(outcomes)) == 1
    print("   -> every replica agrees bit-for-bit\n")

    outcomes = run_replicas(buggy=True, deterministic=True)
    show("3) buggy engine (a lock was dropped) under CLEAN:", outcomes)
    finished = {o for o in outcomes if o[0] == "OK"}
    assert len(finished) <= 1, "finishing replicas must still agree"
    print("   -> faulty executions raise exceptions; the quorum discards\n"
          "      them and any finishing replicas still agree")


if __name__ == "__main__":
    main()
