"""The paper's Figure 1: out-of-thin-air values, and how CLEAN stops them.

* Figure 1a: a compiler spills a validated variable and re-reads it from
  memory; a racy write in between defeats the bounds check and the
  program branches to an arbitrary branch-table index.
* Figure 1b: a 64-bit store executed as two 32-bit halves; two
  concurrent stores can leave a value (0x1_0000_0001) that appears in
  neither thread's code.

Without CLEAN, both pathologies materialize on some schedules.  With
CLEAN, every schedule that would expose them is stopped by a race
exception first — the programmer never observes the impossible value.

Run:  python examples/out_of_thin_air.py
"""

from repro import run_clean
from repro.runtime import Program, RandomPolicy
from repro.workloads import (
    BRANCH_TABLE_SIZE,
    spilled_switch_program,
    torn_write_program,
)

SEEDS = range(24)


def explore(make_program, pathological):
    """Run under many schedules, with and without CLEAN."""
    bad_without, bad_with, stopped = 0, 0, 0
    for seed in SEEDS:
        bare = make_program().run(policy=RandomPolicy(seed))
        if pathological(bare):
            bad_without += 1
        checked = run_clean(make_program(), policy=RandomPolicy(seed),
                            deterministic=False)
        if checked.race is not None:
            stopped += 1
        elif pathological(checked):
            bad_with += 1
    return bad_without, bad_with, stopped


def main():
    print("Figure 1a: spilled switch variable")

    def wild_branch(result):
        for value in result.outputs.get(0, []):
            if isinstance(value, tuple) and value[0] == "branch":
                return value[1] >= BRANCH_TABLE_SIZE
        return False

    bad, bad_clean, stopped = explore(spilled_switch_program, wild_branch)
    print(f"  without CLEAN: wild branch on {bad}/{len(SEEDS)} schedules")
    print(f"  with CLEAN:    wild branch on {bad_clean}/{len(SEEDS)} "
          f"(stopped by race exception on {stopped})")
    assert bad > 0, "expected the pathology to be reachable"
    assert bad_clean == 0, "CLEAN must prevent the wild branch"

    print("\nFigure 1b: torn 64-bit store")
    torn_values = {0x1_0000_0001, 0x1_0000_0000 ^ 0x1 ^ 0x1_0000_0001}

    def torn(result):
        value = result.thread_results.get(0)
        return value in torn_values

    bad, bad_clean, stopped = explore(torn_write_program, torn)
    print(f"  without CLEAN: x == 0x100000001 on {bad}/{len(SEEDS)} schedules")
    print(f"  with CLEAN:    torn value on {bad_clean}/{len(SEEDS)} "
          f"(stopped by race exception on {stopped})")
    assert bad_clean == 0, "CLEAN must prevent the torn value"


if __name__ == "__main__":
    main()
