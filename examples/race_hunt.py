"""Race hunting: CLEAN vs. FastTrack vs. an imprecise TSan-like detector.

Explores many schedules of one buggy program with three detectors
attached to the *same* execution, and tallies what each one saw:

* the precise FastTrack oracle reports every race (WAW, RAW, *and* WAR);
* CLEAN stops exactly the WAW/RAW schedules and never reports WAR —
  by design, not by accident: the undetected WAR schedules still
  completed with clean SFR semantics;
* the TSan-like detector (k last accesses per 8-byte granule) reports
  without stopping and can *miss* races after shadow-cell eviction.

Run:  python examples/race_hunt.py
"""

from collections import Counter

from repro.baselines import FastTrackDetector, TsanLiteDetector
from repro.clean import CleanMonitor
from repro.core import CleanDetector
from repro.runtime import (
    Compute,
    Join,
    Program,
    RandomPolicy,
    Read,
    Spawn,
    Write,
)

N_SCHEDULES = 40


def buggy_program(ctx):
    """A work-queue with a forgotten lock: the flag/data pair races."""

    def producer(ctx, data, flag):
        yield Compute(5)
        yield Write(data, 8, 0xFEED)   # fill the payload...
        yield Write(flag, 1, 1)        # ...and racily publish it

    def consumer(ctx, data, flag):
        ready = yield Read(flag, 1)    # racy poll
        yield Compute(3)
        if ready:
            return (yield Read(data, 8))
        return None

    data = ctx.alloc(8)
    flag = ctx.alloc(1)
    p = yield Spawn(producer, (data, flag))
    c = yield Spawn(consumer, (data, flag))
    yield Join(p)
    result = yield Join(c)
    return result


def main():
    clean_outcomes = Counter()
    oracle_kinds = Counter()
    tsan_reports = Counter()

    for seed in range(N_SCHEDULES):
        oracle = FastTrackDetector(max_threads=8, record_only=True)
        tsan = TsanLiteDetector(max_threads=8, k=4)
        clean = CleanDetector(max_threads=8)
        result = Program(buggy_program).run(
            policy=RandomPolicy(seed),
            monitors=[
                CleanMonitor(detector=oracle),
                CleanMonitor(detector=tsan),
                CleanMonitor(detector=clean),
            ],
        )
        if result.race is not None:
            clean_outcomes[f"stopped ({result.race.kind})"] += 1
        else:
            clean_outcomes["completed"] += 1
        for kind in oracle.race_kinds():
            oracle_kinds[kind] += 1
        for kind in tsan.race_kinds():
            tsan_reports[kind] += 1

    print(f"{N_SCHEDULES} schedules of the racy publish/poll program\n")
    print("CLEAN outcomes:")
    for outcome, count in clean_outcomes.most_common():
        print(f"   {count:3d}x {outcome}")
    print("\nFastTrack oracle saw (schedules containing each kind):")
    for kind, count in sorted(oracle_kinds.items()):
        print(f"   {kind}: {count}")
    print("\nTSan-like detector reported:")
    for kind, count in sorted(tsan_reports.items()):
        print(f"   {kind}: {count}")
    print(
        "\nReading: CLEAN stops exactly the RAW/WAW schedules; schedules"
        "\nwhere the races resolved as WAR complete — with SFR isolation"
        "\nand write-atomicity still guaranteed (Section 3.1)."
    )


if __name__ == "__main__":
    main()
