"""Hardware CLEAN walkthrough: from workload to Figure-9-style numbers.

Records an access trace of one SPLASH-2 model on the cooperative
runtime, then replays it on the trace-driven multicore simulator twice —
without and with the CLEAN race-check unit — and prints what the
hardware did: the slowdown, the Figure-10 access breakdown, metadata
line states, and the cache behaviour, for both a regular benchmark and
the byte-granular dedup (the paper's pathological case).

Run:  python examples/hardware_walkthrough.py
"""

from repro.hardware import AccessClass, SimConfig, simulate_trace
from repro.runtime import RoundRobinPolicy, TraceRecorder
from repro.workloads import build_program, get_benchmark


def record(name):
    spec = get_benchmark(name)
    recorder = TraceRecorder()
    build_program(spec, scale="simsmall", racy=False, seed=0).run(
        policy=RoundRobinPolicy(), monitors=[recorder], max_threads=16
    )
    return recorder.trace


def walk(name):
    trace = record(name)
    print(f"=== {name} ===")
    print(f"trace: {trace.total_events} events, "
          f"{trace.shared_accesses()} shared accesses, "
          f"{len(trace.thread_ids())} threads")

    base = simulate_trace(trace, SimConfig(detection=False))
    det = simulate_trace(trace, SimConfig(detection=True))
    print(f"baseline:  {base.cycles:>9} cycles")
    print(f"with CLEAN:{det.cycles:>9} cycles  "
          f"(slowdown {det.cycles / base.cycles:.3f}x)")

    stats = det.check_stats
    print("race-check breakdown:")
    for access_class in AccessClass.ALL:
        share = stats.fraction(access_class) * 100
        if share:
            print(f"   {access_class:<15s} {share:6.2f}%")
    print(f"   quick (private+fast): {stats.quick_fraction * 100:.1f}%")
    print(f"   compact-or-private:   "
          f"{stats.compact_or_private_fraction * 100:.1f}%")
    print(f"   line expansions:      {det.expansions}")

    hier = det.hierarchy.stats
    print("memory hierarchy (detection config):")
    print(f"   L1 hits {hier.l1_hits}, L2 {hier.l2_hits}, "
          f"remote {hier.remote_hits}, L3 {hier.l3_hits}, "
          f"memory {hier.memory_fetches}")
    print(f"   invalidations {hier.invalidations}, "
          f"LLC miss rate {hier.llc_miss_rate * 100:.2f}%")
    print()


def main():
    walk("lu_cb")    # wide accesses, high density: compaction shines
    walk("dedup")    # byte-granular pipeline: expanded lines dominate


if __name__ == "__main__":
    main()
