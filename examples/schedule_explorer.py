"""Exhaustive schedule exploration and the region-serializability gap.

Two demonstrations on ONE tiny racy program, using the library's
CHESS-style explorer to enumerate *every* interleaving:

1. The Section-3.4 iff-property, schedule by schedule: CLEAN raises a
   race exception exactly on the interleavings where a precise detector
   observes a WAW or RAW race; the WAR-resolving interleavings complete.

2. The Section-7 positioning: among the completed (WAR-only)
   interleavings there are executions that are *not* region-serializable
   — yet SFR isolation and write-atomicity hold, which is precisely the
   gap between region serializability and CLEAN's (cheaper) guarantee.

Run:  python examples/schedule_explorer.py
"""

from collections import Counter

from repro.baselines import VcRaceDetector
from repro.clean import CleanMonitor
from repro.core import CleanDetector
from repro.runtime import (
    Compute,
    IsolationOracle,
    Join,
    Program,
    Read,
    SfrTracker,
    Spawn,
    Write,
    WriteAtomicityOracle,
    explore_results,
)
from repro.runtime.serializability import RegionSerializabilityOracle


def make_program():
    """Two SFRs that read the other's variable, then write their own."""

    def left(ctx, x, y):
        seen = yield Read(x, 4)
        yield Write(y, 4, 100 + seen)
        return seen

    def right(ctx, x, y):
        seen = yield Read(y, 4)
        yield Write(x, 4, 200 + seen)
        return seen

    def main(ctx):
        x = ctx.alloc(4)
        y = ctx.alloc(4)
        a = yield Spawn(left, (x, y))
        b = yield Spawn(right, (x, y))
        ra = yield Join(a)
        rb = yield Join(b)
        return (ra, rb)

    return Program(main)


def monitors_factory():
    tracker = SfrTracker()
    return [
        tracker,
        IsolationOracle(tracker),
        WriteAtomicityOracle(tracker),
        RegionSerializabilityOracle(tracker),
        CleanMonitor(detector=VcRaceDetector(max_threads=8, record_only=True)),
        CleanMonitor(detector=CleanDetector(max_threads=8)),
    ]


def main():
    outcomes, stats = explore_results(
        make_program, monitors_factory, max_schedules=100_000, max_threads=8
    )
    assert not stats.truncated
    print(f"explored ALL {stats.schedules} interleavings\n")

    tally = Counter()
    non_rs_completions = 0
    for result, monitors in outcomes:
        _, isolation, atomicity, rs, oracle_mon, _ = monitors
        oracle_kinds = set(oracle_mon.detector.race_kinds())
        if result.race is not None:
            tally[f"stopped by CLEAN ({result.race.kind})"] += 1
            assert oracle_kinds & {"WAW", "RAW"}, "iff violated!"
            continue
        assert not (oracle_kinds & {"WAW", "RAW"}), "iff violated!"
        assert isolation.violations == [], "SFR isolation violated!"
        assert atomicity.violations == [], "write-atomicity violated!"
        if rs.serializable:
            tally["completed (region-serializable)"] += 1
        else:
            tally["completed (NOT region-serializable)"] += 1
            non_rs_completions += 1

    for outcome, count in tally.most_common():
        print(f"  {count:3d}x {outcome}")

    print(
        "\nOn every stopped schedule the precise oracle confirmed a WAW/RAW"
        "\nrace; on every completed schedule it saw none (iff verified)."
    )
    if non_rs_completions:
        print(
            f"\n{non_rs_completions} completed interleavings are not"
            "\nregion-serializable, yet SFR isolation and write-atomicity"
            "\nheld on all of them: region serializability is strictly"
            "\nstronger than CLEAN's guarantee (paper, Section 7)."
        )


if __name__ == "__main__":
    main()
