"""Quickstart: CLEAN in five minutes.

Shows the three behaviours that define CLEAN's execution model:

1. a WAW or RAW race stops the execution with a race exception;
2. a WAR race is deliberately *not* an exception — the execution
   completes, and its result is deterministic;
3. race-free programs always complete, with the same result on every
   schedule.

Run:  python examples/quickstart.py
"""

from repro import run_clean
from repro.runtime import (
    Acquire,
    Join,
    Lock,
    Program,
    RandomPolicy,
    Read,
    Release,
    Spawn,
    Write,
)


def racy_counter(ctx):
    """Two threads increment a shared counter without a lock."""

    def worker(ctx, addr):
        value = yield Read(addr, 4)          # RAW race candidate
        yield Write(addr, 4, value + 1)      # WAW race candidate

    addr = ctx.alloc(4)
    yield Write(addr, 4, 0)
    a = yield Spawn(worker, (addr,))
    b = yield Spawn(worker, (addr,))
    yield Join(a)
    yield Join(b)
    return (yield Read(addr, 4))


def war_only(ctx):
    """A read concurrent with a later write: a WAR race, which CLEAN
    allows — stopping would not improve the semantics (the read saw the
    old value, which the program could legitimately produce anyway)."""

    def reader(ctx, addr):
        return (yield Read(addr, 4))

    addr = ctx.alloc(4)
    kid = yield Spawn(reader, (addr,))
    joined = yield Join(kid)      # reader runs to completion first here
    yield Write(addr, 4, 42)      # ... so this write is ordered: no race
    return joined


def locked_counter(ctx):
    """The race-free version: the lock orders every access."""
    lock = Lock("counter")

    def worker(ctx, addr):
        yield Acquire(lock)
        value = yield Read(addr, 4)
        yield Write(addr, 4, value + 1)
        yield Release(lock)

    addr = ctx.alloc(4)
    yield Write(addr, 4, 0)
    a = yield Spawn(worker, (addr,))
    b = yield Spawn(worker, (addr,))
    yield Join(a)
    yield Join(b)
    return (yield Read(addr, 4))


def main():
    print("1) racy counter under CLEAN (several schedules):")
    for seed in range(4):
        result = run_clean(Program(racy_counter), policy=RandomPolicy(seed))
        if result.race is not None:
            print(f"   seed {seed}: stopped -> {result.race}")
        else:
            print(f"   seed {seed}: completed with {result.thread_results[0]}"
                  " (the racing accesses happened to be ordered)")

    print("\n2) WAR-only program: completes (CLEAN never reports WAR):")
    result = run_clean(Program(war_only))
    print(f"   completed, reader saw {result.thread_results[0]}")

    print("\n3) race-free locked counter: always completes, one result:")
    outcomes = set()
    for seed in range(6):
        result = run_clean(Program(locked_counter), policy=RandomPolicy(seed))
        assert result.race is None
        outcomes.add(result.thread_results[0])
    print(f"   results across 6 schedules: {sorted(outcomes)} "
          "(deterministic: exactly one)")


if __name__ == "__main__":
    main()
