"""Property tests for the CLEAN execution model (paper Section 3.4).

These are the load-bearing correctness tests of the reproduction.  Over
seeded random programs and seeded random schedules they check, on *every*
explored interleaving:

1. **Exception iff WAW/RAW** — CLEAN raises a race exception exactly when
   a precise vector-clock oracle observing the same interleaving records
   a WAW or RAW race; WAR-only interleavings complete.
2. **SFR isolation & write-atomicity** — no exception-free execution
   shows a violation under the independent semantic oracles.
3. **Determinism** — race-free programs under the Kendo gate produce one
   fingerprint across scheduling policies and seeds.
4. **No out-of-thin-air values** — every value read was written by some
   program write (or is the initial zero).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import VcRaceDetector
from repro.clean import CleanMonitor
from repro.core import CleanDetector
from repro.determinism import KendoGate
from repro.runtime import (
    IsolationOracle,
    Program,
    RandomPolicy,
    RoundRobinPolicy,
    SfrTracker,
    WriteAtomicityOracle,
)
from repro.workloads.randprog import make_random_program

MAX_THREADS = 8


def run_with_clean_and_oracle(program, policy):
    """One execution observed simultaneously by CLEAN and the precise
    vector-clock oracle (record-only), so both see the same interleaving."""
    oracle = VcRaceDetector(max_threads=MAX_THREADS, record_only=True)
    clean = CleanDetector(max_threads=MAX_THREADS)
    monitors = [
        CleanMonitor(detector=oracle),
        CleanMonitor(detector=clean),
    ]
    result = program.run(policy=policy, monitors=monitors, max_threads=MAX_THREADS)
    return result, oracle, clean


program_seeds = st.integers(min_value=0, max_value=10_000)
schedule_seeds = st.integers(min_value=0, max_value=10_000)
race_probs = st.sampled_from([0.0, 0.2, 0.5, 0.9])


class TestExceptionIffWawRaw:
    @settings(max_examples=60, deadline=None)
    @given(pseed=program_seeds, sseed=schedule_seeds, prob=race_probs)
    def test_clean_raises_iff_oracle_sees_waw_or_raw(self, pseed, sseed, prob):
        program, _plan = make_random_program(
            pseed, n_threads=3, ops_per_thread=10, race_probability=prob
        )
        result, oracle, _clean = run_with_clean_and_oracle(
            program, RandomPolicy(sseed)
        )
        oracle_kinds = set(oracle.race_kinds())
        if result.race is not None:
            assert result.race.kind in {"WAW", "RAW"}
            assert oracle_kinds & {"WAW", "RAW"}, (
                f"CLEAN raised {result.race.kind} but the precise oracle saw "
                f"only {oracle_kinds or 'nothing'}"
            )
        else:
            assert not (oracle_kinds & {"WAW", "RAW"}), (
                f"precise oracle saw {oracle_kinds} but CLEAN stayed silent"
            )

    @settings(max_examples=40, deadline=None)
    @given(pseed=program_seeds, sseed=schedule_seeds)
    def test_race_free_programs_never_raise(self, pseed, sseed):
        program, plan = make_random_program(
            pseed, n_threads=3, ops_per_thread=12, race_probability=0.0
        )
        assert not plan.racy_by_construction
        result = program.run(
            policy=RandomPolicy(sseed),
            monitors=[CleanMonitor(detector=CleanDetector(max_threads=MAX_THREADS))],
            max_threads=MAX_THREADS,
        )
        assert result.race is None


class TestSfrGuarantees:
    @settings(max_examples=50, deadline=None)
    @given(pseed=program_seeds, sseed=schedule_seeds, prob=race_probs)
    def test_exception_free_runs_have_clean_semantics(self, pseed, sseed, prob):
        """Whether or not the program is racy, any execution CLEAN allows
        to complete shows no isolation or write-atomicity violations."""
        program, _plan = make_random_program(
            pseed, n_threads=3, ops_per_thread=10, race_probability=prob
        )
        tracker = SfrTracker()
        isolation = IsolationOracle(tracker)
        atomicity = WriteAtomicityOracle(tracker)
        result = program.run(
            policy=RandomPolicy(sseed),
            monitors=[
                tracker,
                isolation,
                atomicity,
                CleanMonitor(detector=CleanDetector(max_threads=MAX_THREADS)),
            ],
            max_threads=MAX_THREADS,
        )
        if result.race is None:
            assert isolation.violations == []
            assert atomicity.violations == []

    @settings(max_examples=50, deadline=None)
    @given(pseed=program_seeds, sseed=schedule_seeds, prob=race_probs)
    def test_violations_only_in_executions_clean_stops(self, pseed, sseed, prob):
        """Contrapositive, run without CLEAN: if the oracles flag a
        violation, the precise oracle must have seen a WAW or RAW race —
        i.e. CLEAN would have stopped this execution."""
        program, _plan = make_random_program(
            pseed, n_threads=3, ops_per_thread=10, race_probability=prob
        )
        tracker = SfrTracker()
        isolation = IsolationOracle(tracker)
        atomicity = WriteAtomicityOracle(tracker)
        oracle = VcRaceDetector(max_threads=MAX_THREADS, record_only=True)
        program.run(
            policy=RandomPolicy(sseed),
            monitors=[tracker, isolation, atomicity, CleanMonitor(detector=oracle)],
            max_threads=MAX_THREADS,
        )
        if isolation.violations or atomicity.violations:
            assert set(oracle.race_kinds()) & {"WAW", "RAW"}


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(pseed=program_seeds)
    def test_race_free_fingerprint_stable_across_schedules(self, pseed):
        fingerprints = set()
        policies = [RoundRobinPolicy()] + [RandomPolicy(s) for s in range(4)]
        for policy in policies:
            program, _plan = make_random_program(
                pseed, n_threads=3, ops_per_thread=10, race_probability=0.0
            )
            result = program.run(
                policy=policy,
                monitors=[
                    CleanMonitor(detector=CleanDetector(max_threads=MAX_THREADS)),
                    KendoGate(),
                ],
                max_threads=MAX_THREADS,
            )
            assert result.race is None
            fingerprints.add(result.fingerprint())
        assert len(fingerprints) == 1

    @settings(max_examples=15, deadline=None)
    @given(pseed=program_seeds, prob=st.sampled_from([0.5, 0.9]))
    def test_completed_racy_runs_are_deterministic(self, pseed, prob):
        """Even racy programs: every execution that *completes* under
        CLEAN+Kendo yields the same result (Section 3.1: exception-free
        executions are deterministic)."""
        fingerprints = set()
        completions = 0
        for sched_seed in range(5):
            program, _plan = make_random_program(
                pseed, n_threads=3, ops_per_thread=8, race_probability=prob
            )
            result = program.run(
                policy=RandomPolicy(sched_seed),
                monitors=[
                    CleanMonitor(detector=CleanDetector(max_threads=MAX_THREADS)),
                    KendoGate(),
                ],
                max_threads=MAX_THREADS,
            )
            if result.race is None:
                completions += 1
                fingerprints.add(result.fingerprint())
        assert len(fingerprints) <= 1


from repro.runtime import ExecutionMonitor


class _ByteProvenance(ExecutionMonitor):
    """Monitor asserting every read byte was previously written there.

    In the paper, out-of-thin-air values arise from compiler and hardware
    transformations that our runtime does not perform, so this is a
    sanity check that the substrate itself honours the guarantee CLEAN's
    semantics promise: reads only ever return bytes some write produced
    (or the initial zero).
    """

    def __init__(self):
        self._written = {}

    def after_write(self, tid, address, size, value, private):
        for i in range(size):
            self._written.setdefault(address + i, {0}).add((value >> (8 * i)) & 0xFF)

    def after_read(self, tid, address, size, value, private):
        for i in range(size):
            byte = (value >> (8 * i)) & 0xFF
            legal = self._written.get(address + i, {0})
            assert byte in legal, (
                f"out-of-thin-air byte {byte:#x} at {address + i:#x}"
            )


class TestNoOutOfThinAir:
    @settings(max_examples=40, deadline=None)
    @given(pseed=program_seeds, sseed=schedule_seeds, prob=race_probs)
    def test_read_bytes_have_provenance(self, pseed, sseed, prob):
        program, _plan = make_random_program(
            pseed, n_threads=3, ops_per_thread=10, race_probability=prob
        )
        program.run(
            policy=RandomPolicy(sseed),
            monitors=[
                _ByteProvenance(),
                CleanMonitor(detector=CleanDetector(max_threads=MAX_THREADS)),
            ],
            max_threads=MAX_THREADS,
        )
