"""Tests for the unified access-event core.

Four groups, matching the hot-path refactor's guarantees:

1. **Stable sync keys** — per-sync vector clocks are keyed by
   :func:`~repro.core.events.stable_sync_id`, never object identity, so
   a reconstructed lock (record/replay, pickling) keeps its
   happens-before history.
2. **Binary trace format** — round trips for both on-disk formats,
   magic-byte auto-detection, and the streaming reader's equivalence to
   the in-memory one.
3. **Verdict invariance** — the fused dispatch + same-epoch-filter hot
   path raises a race exception iff the pre-refactor reference stack
   (``fused=False``, filter off) does, with identical provenance.
4. **Offline analysis equivalence** — scalar, ``check_block`` batch and
   sharded-parallel trace analysis agree on every verdict, racing pair
   and ``clean.*`` counter total, and race-free replays are counter-exact
   against the live run that recorded them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_trace
from repro.clean import CleanMonitor, clean_stack
from repro.core import CleanDetector
from repro.core.events import stable_sync_id
from repro.determinism.counters import PreciseCounter
from repro.hardware import SimConfig, simulate_trace
from repro.obs import MetricsRegistry
from repro.runtime import (
    READ,
    SYNC,
    WRITE,
    Lock,
    Program,
    RandomPolicy,
    StreamingTrace,
    Trace,
    TraceEvent,
    TraceRecorder,
    open_trace,
)
from repro.workloads.randprog import make_random_program

MAX_THREADS = 8


# ---------------------------------------------------------------------------
# 1. Stable sync keys
# ---------------------------------------------------------------------------


class TestStableSyncId:
    def test_named_object_maps_to_its_name(self):
        assert stable_sync_id(Lock("shared")) == "shared"

    def test_two_instances_same_name_collapse(self):
        assert stable_sync_id(Lock("shared")) == stable_sync_id(Lock("shared"))

    def test_tuple_maps_elementwise(self):
        barrier_like = Lock("b1")  # anything with a .name
        assert stable_sync_id((barrier_like, 3)) == ("b1", 3)

    def test_plain_hashables_pass_through(self):
        assert stable_sync_id("lock") == "lock"
        assert stable_sync_id(17) == 17


class TestLockKeyRegression:
    """A reconstructed lock object must carry the same vector clock.

    Before the event-core refactor the detector keyed ``_lock_vcs`` by
    the lock *object*, so releasing on one ``Lock("shared")`` instance
    and acquiring on another (as replay of a persisted trace does)
    silently dropped the happens-before edge and reported a phantom
    race.
    """

    def test_edge_survives_lock_reconstruction(self):
        det = CleanDetector(max_threads=4)
        t0 = det.spawn_root()
        t1 = det.fork(t0)
        det.check_write(t0, 0x100, 8)
        det.release(t0, Lock("shared"))
        # A *different* object with the same stable name: the edge must
        # still be found, so t1's write is ordered after t0's.
        det.acquire(t1, Lock("shared"))
        det.check_write(t1, 0x100, 8)  # must not raise

    def test_identity_keying_would_have_raced(self):
        from repro.core.exceptions import WawRaceException

        det = CleanDetector(max_threads=4)
        t0 = det.spawn_root()
        t1 = det.fork(t0)
        det.check_write(t0, 0x100, 8)
        det.release(t0, Lock("shared"))
        det.acquire(t1, Lock("other"))  # genuinely different lock
        with pytest.raises(WawRaceException):
            det.check_write(t1, 0x100, 8)

    def test_one_clock_per_name_not_per_instance(self):
        det = CleanDetector(max_threads=4)
        t0 = det.spawn_root()
        det.release(t0, Lock("shared"))
        det.release(t0, Lock("shared"))
        assert list(det._lock_vcs) == ["shared"]


# ---------------------------------------------------------------------------
# 2. Binary trace format
# ---------------------------------------------------------------------------


def small_trace():
    return Trace(
        per_thread={
            1: [
                TraceEvent(WRITE, 0x1000, 8, gap=3),
                TraceEvent(SYNC, gap=1, sync_name="Release"),
                TraceEvent(READ, 0x1000, 4, private=True, gap=0),
            ],
            2: [TraceEvent(READ, 0x2000, 1, gap=7)],
        }
    )


class TestBinaryTraceRoundTrip:
    @pytest.mark.parametrize("compress", [True, False])
    def test_roundtrip(self, tmp_path, compress):
        path = tmp_path / "t.trace"
        original = small_trace()
        original.save(path, compress=compress)
        loaded = Trace.load(path)
        assert loaded.per_thread == original.per_thread

    def test_roundtrip_empty_trace(self, tmp_path):
        path = tmp_path / "empty.trace"
        Trace(per_thread={}).save(path)
        assert Trace.load(path).per_thread == {}

    def test_empty_thread_stays_visible(self, tmp_path):
        path = tmp_path / "t.trace"
        original = Trace(per_thread={3: [], 5: [TraceEvent(WRITE, 0x10, 1)]})
        original.save(path)
        loaded = Trace.load(path)
        assert loaded.thread_ids() == [3, 5]
        assert loaded.per_thread[3] == []

    def test_chunking_preserves_order(self, tmp_path):
        events = [TraceEvent(WRITE, 0x1000 + i, 1, gap=i % 5) for i in range(50)]
        path = tmp_path / "t.trace"
        Trace(per_thread={1: events}).save(path, chunk_events=7)
        assert Trace.load(path).per_thread[1] == events

    def test_extension_picks_format(self, tmp_path):
        jsonl = tmp_path / "t.jsonl"
        binary = tmp_path / "t.trace"
        small_trace().save(jsonl)
        small_trace().save(binary)
        assert jsonl.read_bytes()[:1] == b"{"
        from repro.runtime.trace import TRACE_MAGIC

        assert binary.read_bytes().startswith(TRACE_MAGIC)

    def test_magic_autodetect_ignores_extension(self, tmp_path):
        # Binary trace saved under a .jsonl-looking name still loads,
        # and a JSONL trace under a binary-looking name does too: the
        # loader trusts the magic bytes, not the file name.
        misnamed_binary = tmp_path / "renamed.jsonl"
        small_trace().save(misnamed_binary, format="binary")
        assert Trace.load(misnamed_binary).per_thread == small_trace().per_thread

        misnamed_jsonl = tmp_path / "renamed.trace"
        small_trace().save(misnamed_jsonl, format="jsonl")
        assert Trace.load(misnamed_jsonl).per_thread == small_trace().per_thread

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            small_trace().save(tmp_path / "t", format="csv")

    def test_unsupported_version_rejected(self, tmp_path):
        from repro.runtime.trace import TRACE_MAGIC

        path = tmp_path / "future.trace"
        path.write_bytes(TRACE_MAGIC + bytes([99]))
        with pytest.raises(ValueError):
            Trace.load(path)


class TestStreamingTrace:
    def test_open_trace_dispatches_by_magic(self, tmp_path):
        binary = tmp_path / "t.trace"
        jsonl = tmp_path / "t.jsonl"
        small_trace().save(binary)
        small_trace().save(jsonl)
        assert isinstance(open_trace(binary), StreamingTrace)
        assert isinstance(open_trace(jsonl), Trace)

    def test_matches_in_memory_load(self, tmp_path):
        path = tmp_path / "t.trace"
        original = small_trace()
        original.save(path, chunk_events=2)
        streaming = StreamingTrace(path)
        assert streaming.thread_ids() == original.thread_ids()
        assert streaming.total_events == original.total_events
        for tid in original.thread_ids():
            assert list(streaming.iter_events(tid)) == original.per_thread[tid]

    def test_iter_events_is_reiterable(self, tmp_path):
        path = tmp_path / "t.trace"
        small_trace().save(path)
        streaming = StreamingTrace(path)
        first = list(streaming.iter_events(1))
        second = list(streaming.iter_events(1))
        assert first == second and first

    def test_interleaved_iterators_are_independent(self, tmp_path):
        path = tmp_path / "t.trace"
        small_trace().save(path, chunk_events=1)
        streaming = StreamingTrace(path)
        it1, it2 = iter(streaming.iter_events(1)), iter(streaming.iter_events(2))
        a = next(it1)
        b = next(it2)
        assert a == small_trace().per_thread[1][0]
        assert b == small_trace().per_thread[2][0]
        assert next(it1) == small_trace().per_thread[1][1]

    def test_simulator_accepts_streaming_trace(self, tmp_path):
        from repro.experiments.traces import record_trace
        from repro.workloads import get_benchmark

        trace = record_trace(get_benchmark("swaptions"), scale="test")
        path = tmp_path / "sw.trace"
        trace.save(path)
        in_memory = simulate_trace(trace, SimConfig(detection=True))
        streamed = simulate_trace(open_trace(path), SimConfig(detection=True))
        assert streamed.cycles == in_memory.cycles


# ---------------------------------------------------------------------------
# 3. Verdict invariance of the fused + filtered hot path
# ---------------------------------------------------------------------------


def run_stack(program, sseed, fused, fastpath):
    """One CLEAN execution on either the fused or the reference stack."""
    monitors, clean, _gate = clean_stack(
        max_threads=MAX_THREADS, fastpath=fastpath
    )
    result = program.run(
        policy=RandomPolicy(sseed),
        monitors=monitors,
        max_threads=MAX_THREADS,
        counter_cost=PreciseCounter(),
        fused=fused,
    )
    return result, clean


program_seeds = st.integers(min_value=0, max_value=10_000)
schedule_seeds = st.integers(min_value=0, max_value=10_000)
race_probs = st.sampled_from([0.0, 0.2, 0.5, 0.9])


class TestVerdictInvariance:
    """The optimized hot path (fused dispatch + same-epoch filter) must
    be observationally equivalent to the pre-refactor stack: same
    race/no-race verdict on the same seeded schedule, and when a race is
    reported, identical (kind, tid, address) provenance."""

    @settings(max_examples=40, deadline=None)
    @given(pseed=program_seeds, sseed=schedule_seeds, prob=race_probs)
    def test_fused_filtered_equals_reference(self, pseed, sseed, prob):
        program, _plan = make_random_program(
            pseed, n_threads=3, ops_per_thread=10, race_probability=prob
        )
        new, _ = run_stack(program, sseed, fused=True, fastpath=True)
        old, _ = run_stack(program, sseed, fused=False, fastpath=False)
        if old.race is None:
            assert new.race is None, (
                f"fused+filtered stack raised {new.race!r} where the "
                f"reference stack completed"
            )
        else:
            assert new.race is not None, (
                f"reference stack raised {old.race!r} but the "
                f"fused+filtered stack stayed silent"
            )
            assert new.race.kind == old.race.kind
            assert new.race.accessing_tid == old.race.accessing_tid
            assert new.race.address == old.race.address
            assert new.race.prior_writer_tid == old.race.prior_writer_tid

    @settings(max_examples=20, deadline=None)
    @given(pseed=program_seeds, sseed=schedule_seeds)
    def test_filter_accounting_is_exact(self, pseed, sseed):
        """Hits + misses equals the checks the unfiltered stack runs, and
        the detector's access statistics are figure-identical."""
        program, _plan = make_random_program(
            pseed, n_threads=3, ops_per_thread=10, race_probability=0.2
        )
        on, clean_on = run_stack(program, sseed, fused=True, fastpath=True)
        off, clean_off = run_stack(program, sseed, fused=True, fastpath=False)
        assert clean_on.fastpath_enabled
        assert not clean_off.fastpath_enabled
        assert (on.race is None) == (off.race is None)
        stats_on = clean_on.detector.stats
        stats_off = clean_off.detector.stats
        assert stats_on.reads == stats_off.reads
        assert stats_on.writes == stats_off.writes

    def test_fastpath_disabled_for_metadata_mutating_backends(self):
        from repro.baselines import FastTrackDetector

        monitor = CleanMonitor(
            detector=FastTrackDetector(max_threads=4, record_only=True),
            fastpath=True,
        )
        assert not monitor.fastpath_enabled


# ---------------------------------------------------------------------------
# 4. Offline analysis equivalence (scalar / batch / sharded)
# ---------------------------------------------------------------------------


def record_only(program, sseed):
    """Record a trace with no detector attached.

    Offline analysis of *racy* programs needs record-only traces: a live
    detector raises before the racing access reaches the recorder, so a
    detection-recorded racy trace is truncated just short of its race.
    """
    recorder = TraceRecorder()
    program.run(
        policy=RandomPolicy(sseed),
        monitors=[recorder],
        max_threads=MAX_THREADS,
        counter_cost=PreciseCounter(),
    )
    return recorder.trace


def clean_counters(monitor):
    """The monitor's ``clean.*`` totals, as offline analysis reports them."""
    registry = MetricsRegistry()
    monitor.accumulate_metrics(registry)
    return {
        name: value
        for name, value in registry.snapshot().items()
        if isinstance(value, (int, float))
    }


RACE_KEYS = (
    "kind",
    "address",
    "size",
    "accessing_tid",
    "prior_writer_tid",
    "prior_writer_clock",
)


def assert_same_race(left, right):
    assert (left is None) == (right is None)
    if left is not None:
        for key in RACE_KEYS:
            assert left[key] == right[key], key


class TestAnalysisEquivalence:
    """``check_block`` and the sharded runner are drop-in equivalents of
    the scalar path: same verdict, same racing pair, same ``clean.*``
    counter totals on every trace."""

    @settings(max_examples=25, deadline=None)
    @given(pseed=program_seeds, sseed=schedule_seeds, prob=race_probs)
    def test_scalar_equals_batch(self, pseed, sseed, prob):
        program, _plan = make_random_program(
            pseed, n_threads=3, ops_per_thread=10, race_probability=prob
        )
        trace = record_only(program, sseed)
        scalar = analyze_trace(trace, mode="scalar")
        batch = analyze_trace(trace, mode="batch")
        assert scalar.racy == batch.racy
        assert_same_race(scalar.race, batch.race)
        assert scalar.counters == batch.counters
        assert (scalar.threads, scalar.events, scalar.accesses) == (
            batch.threads,
            batch.events,
            batch.accesses,
        )

    @settings(max_examples=15, deadline=None)
    @given(pseed=program_seeds, sseed=schedule_seeds)
    def test_race_free_replay_matches_live_counters(self, pseed, sseed):
        """On a race-free trace the offline replay is figure-exact: every
        ``clean.*`` counter equals the live run that recorded it."""
        program, _plan = make_random_program(
            pseed, n_threads=3, ops_per_thread=10, race_probability=0.0
        )
        monitors, clean, _gate = clean_stack(max_threads=MAX_THREADS)
        recorder = TraceRecorder()
        result = program.run(
            policy=RandomPolicy(sseed),
            monitors=monitors + [recorder],
            max_threads=MAX_THREADS,
            counter_cost=PreciseCounter(),
        )
        assert result.race is None  # race-free by construction
        for mode in ("scalar", "batch"):
            report = analyze_trace(recorder.trace, mode=mode)
            assert not report.racy
            assert report.counters == clean_counters(clean), mode

    def test_sharded_equals_scalar_on_racy_trace(self, tmp_path):
        # Seeds chosen so the recorded interleaving contains a race.
        program, _plan = make_random_program(
            0, n_threads=3, ops_per_thread=10, race_probability=0.9
        )
        path = tmp_path / "racy.trace"
        record_only(program, 0).save(path)
        scalar = analyze_trace(path, mode="scalar")
        assert scalar.racy
        sharded = analyze_trace(path, mode="sharded", shards=3, workers=2)
        assert sharded.racy
        assert_same_race(scalar.race, sharded.race)
        assert scalar.race["position"] == sharded.race["position"]
        assert scalar.counters == sharded.counters
        assert sharded.shards == 3
        assert len(sharded.shard_stats) == 3

    def test_sharded_equals_scalar_on_race_free_trace(self, tmp_path):
        program, _plan = make_random_program(
            1, n_threads=3, ops_per_thread=12, race_probability=0.0
        )
        path = tmp_path / "clean.trace"
        record_only(program, 1).save(path)
        scalar = analyze_trace(path, mode="scalar")
        assert not scalar.racy
        sharded = analyze_trace(path, mode="sharded", shards=3, workers=2)
        assert not sharded.racy
        assert sharded.race is None
        assert scalar.counters == sharded.counters

    def test_legacy_traces_are_rejected(self):
        # Pre-batch recorders left the SYNC address field zero; without
        # the global sync order replay cannot be reconstructed.
        trace = Trace(
            per_thread={0: [TraceEvent(SYNC, sync_name="Acquire:L")]}
        )
        with pytest.raises(ValueError, match="re-record"):
            analyze_trace(trace)
