"""The fault-tolerant parallel job runner (repro.exec)."""

import json
import os

import pytest

from repro.exec import CheckpointStore, Job, JobRunner, resolve
from repro.exec.job import InjectedFailure, run_job
from repro.obs import MetricsRegistry, Tracer


def _job(fn, name="", **config):
    return Job(fn=f"tests._runner_jobs:{fn}", config=config, name=name)


class TestJobModel:
    def test_resolve_dotted_path(self):
        fn = resolve("tests._runner_jobs:double")
        assert fn(x=3) == {"x": 3, "doubled": 6}

    def test_resolve_rejects_bad_paths(self):
        with pytest.raises(ValueError):
            resolve("no-colon-here")
        with pytest.raises(AttributeError):
            resolve("tests._runner_jobs:missing")

    def test_job_id_is_content_hash(self):
        a = _job("double", x=1)
        b = Job(fn=a.fn, config={"x": 1}, name="other", group="g")
        c = _job("double", x=2)
        # name/group are presentational; config changes the id.
        assert a.job_id == b.job_id
        assert a.job_id != c.job_id
        assert len(a.job_id) == 16

    def test_config_key_order_does_not_change_id(self):
        a = Job(fn="m:f", config={"x": 1, "y": 2})
        b = Job(fn="m:f", config={"y": 2, "x": 1})
        assert a.job_id == b.job_id

    def test_injected_failure_raises_and_changes_id(self):
        plain = _job("double", x=1)
        injected = _job("double", x=1, inject_failure=True)
        assert plain.job_id != injected.job_id
        with pytest.raises(InjectedFailure):
            run_job(injected)


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        job = _job("double", x=5)
        assert store.load(job) is None
        store.store(job, {"doubled": 10}, attempts=1)
        record = store.load(job)
        assert record["value"] == {"doubled": 10}
        assert record["attempts"] == 1
        assert job in store

    def test_corrupt_and_mismatched_records_miss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        job = _job("double", x=5)
        store.store(job, 10)
        # Corrupt file -> miss.
        store.path(job.job_id).write_text("not json")
        assert store.load(job) is None
        # Wrong format version -> miss.
        store.store(job, 10)
        record = json.loads(store.path(job.job_id).read_text())
        record["format"] = -1
        store.path(job.job_id).write_text(json.dumps(record))
        assert store.load(job) is None

    def test_discard_and_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        jobs = [_job("double", x=i) for i in range(3)]
        for job in jobs:
            store.store(job, job.config["x"])
        store.discard(jobs[0])
        assert jobs[0] not in store and jobs[1] in store
        assert store.clear() == 2


class TestRunnerInline:
    def test_results_in_submission_order(self):
        jobs = [_job("double", x=i) for i in (3, 1, 2)]
        results = JobRunner().run(jobs)
        assert [r.value["x"] for r in results] == [3, 1, 2]
        assert all(r.ok and r.attempts == 1 and not r.cached for r in results)

    def test_worker_raises_becomes_failed_result(self):
        runner = JobRunner(retries=1, backoff=0.0)
        results = runner.run([_job("boom", message="nope")])
        (res,) = results
        assert not res.ok
        assert res.status == "failed"
        assert "RuntimeError: nope" in res.error
        assert res.attempts == 2  # initial try + 1 retry
        assert runner.stats["failures"] == 1
        assert runner.stats["retries"] == 1

    def test_retry_then_succeed(self, tmp_path):
        counter = str(tmp_path / "count.json")
        runner = JobRunner(retries=2, backoff=0.0)
        (res,) = runner.run([_job("flaky", counter_file=counter, fail_times=1)])
        assert res.ok
        assert res.value["calls"] == 2
        assert res.attempts == 2
        assert runner.stats["retries"] == 1
        assert runner.stats["failures"] == 0


class TestRunnerPool:
    def test_parallel_results_in_submission_order(self):
        jobs = [_job("double", x=i) for i in range(6)]
        runner = JobRunner(workers=2, retries=0)
        results = runner.run(jobs)
        assert [r.value["x"] for r in results] == list(range(6))
        if not runner.stats["degraded"]:
            assert runner.stats["executed"] == 6

    def test_worker_timeout(self):
        runner = JobRunner(workers=1, timeout=0.2, retries=0)
        (res,) = runner.run([_job("sleeper", seconds=30.0)])
        if runner.stats["degraded"]:
            pytest.skip("process workers unavailable in this sandbox")
        assert not res.ok
        assert "Timeout" in res.error
        assert runner.stats["timeouts"] == 1
        # The terminated attempt must not have taken the full sleep.
        assert res.duration_s < 10.0

    def test_worker_crash_is_a_failure_not_an_exception(self):
        runner = JobRunner(workers=1, timeout=60.0, retries=0)
        (res,) = runner.run(
            [Job(fn="os:_exit", config={"status": 3}, name="crasher")]
        )
        if runner.stats["degraded"]:
            pytest.skip("process workers unavailable in this sandbox")
        assert not res.ok
        assert "WorkerCrash" in res.error

    def test_pool_retry_then_succeed(self, tmp_path):
        counter = str(tmp_path / "count.json")
        runner = JobRunner(workers=2, retries=2, backoff=0.0, timeout=60.0)
        (res,) = runner.run([_job("flaky", counter_file=counter, fail_times=1)])
        assert res.ok
        assert res.attempts == 2 or runner.stats["degraded"]


class TestCheckpointResume:
    def test_cache_hit_after_resume(self, tmp_path):
        store = CheckpointStore(tmp_path / "cache")
        jobs = [_job("double", x=i) for i in range(4)]
        first = JobRunner(store=store)
        cold = first.run(jobs)
        assert first.stats["executed"] == 4
        assert first.stats["cache_hits"] == 0
        second = JobRunner(store=store)
        warm = second.run(jobs)
        assert second.stats["executed"] == 0
        assert second.stats["cache_hits"] == 4
        assert all(r.cached for r in warm)
        assert [r.value for r in warm] == [r.value for r in cold]

    def test_failures_are_not_checkpointed(self, tmp_path):
        store = CheckpointStore(tmp_path / "cache")
        job = _job("boom")
        runner = JobRunner(store=store, retries=0)
        (res,) = runner.run([job])
        assert not res.ok
        assert job not in store
        # The job re-runs (not cache-served) on the next invocation.
        again = JobRunner(store=store, retries=0)
        again.run([job])
        assert again.stats["executed"] == 1

    def test_partial_resume(self, tmp_path):
        store = CheckpointStore(tmp_path / "cache")
        jobs = [_job("double", x=i) for i in range(4)]
        JobRunner(store=store).run(jobs[:2])
        runner = JobRunner(store=store)
        results = runner.run(jobs)
        assert runner.stats["cache_hits"] == 2
        assert runner.stats["executed"] == 2
        assert [r.value["doubled"] for r in results] == [0, 2, 4, 6]


class TestTelemetry:
    def test_runner_counters_and_spans(self, tmp_path):
        registry = MetricsRegistry()
        tracer = Tracer()
        store = CheckpointStore(tmp_path / "cache")
        runner = JobRunner(store=store, registry=registry, tracer=tracer)
        jobs = [_job("double", x=i) for i in range(3)]
        runner.run(jobs)
        assert registry.value("runner.submitted") == 3
        assert registry.value("runner.executed") == 3
        assert registry.value("runner.wall_seconds") > 0
        assert len(tracer.spans_named("runner.job")) == 3
        runner.run(jobs)  # second pass: all cache hits
        assert registry.value("runner.cache_hits") == 3
        assert registry.value("runner.executed") == 3  # unchanged

    def test_summary_line(self):
        runner = JobRunner()
        runner.run([_job("double", x=1)])
        line = runner.summary()
        assert "jobs=1" in line and "executed=1" in line and "failed=0" in line


class TestReportDegradation:
    def test_injected_failure_renders_failed_row_and_exits_nonzero(
        self, tmp_path, capsys
    ):
        from repro.experiments import report

        code = report.main(
            ["--fast", "--no-cache", "--inject-failure", "swaptions"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED: InjectedFailure" in out
        assert "[failures]" in out
        # Every experiment still rendered.
        for name in ("Section 6.2.2", "Figure 9", "Ablation A4"):
            assert name in out
        # swaptions failed everywhere it appears, including the merged
        # hardware job's four downstream tables.
        import re

        failed_rows = re.findall(r"swaptions\s+FAILED: InjectedFailure", out)
        assert len(failed_rows) >= 8  # sec62, fig6-8, table1, fig9-11, a1...
