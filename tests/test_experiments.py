"""Integration tests: every experiment harness regenerates the paper's
qualitative results (shape, ordering, who-wins), at reduced scale."""

import pytest

from repro.experiments import fig6_software, fig7_freq, fig8_vector
from repro.experiments import fig9_hardware, fig10_breakdown, fig11_epochsize
from repro.experiments import sec62_detection, table1_rollover
from repro.experiments.common import (
    ExperimentResult,
    geomean,
    mean_ci,
    render_table,
)
from repro.experiments.traces import record_all_traces


@pytest.fixture(scope="module")
def hw_traces():
    """Shared traces for the hardware experiments (test scale)."""
    return record_all_traces(scale="test")


class TestCommonHelpers:
    def test_experiment_result_rows(self):
        r = ExperimentResult("X", "t", ["a", "b"])
        r.add_row("k", 1.0)
        assert r.column("b") == [1.0]
        assert r.row_for("k") == ["k", 1.0]
        with pytest.raises(KeyError):
            r.row_for("missing")
        with pytest.raises(ValueError):
            r.add_row("only-one")

    def test_render_contains_rows(self):
        r = ExperimentResult("X", "title", ["name", "value"])
        r.add_row("fft", 1.5)
        text = r.render()
        assert "fft" in text and "1.500" in text and "title" in text

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_mean_ci(self):
        mean, half = mean_ci([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert half > 0
        assert mean_ci([5.0]) == (5.0, 0.0)

    def test_mean_ci_uses_requested_confidence(self):
        """Regression: non-0.95 confidences silently used the 99% z-value
        (2.576); each level must get its own two-sided normal quantile."""
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        expected_z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}
        halves = {}
        for confidence, z in expected_z.items():
            mean, half = mean_ci(values, confidence=confidence)
            assert mean == pytest.approx(3.0)
            halves[confidence] = half
            # Recover the z-value the implementation used.
            import math
            import statistics

            used = half * math.sqrt(len(values)) / statistics.stdev(values)
            assert used == pytest.approx(z, abs=1e-3), confidence
        assert halves[0.90] < halves[0.95] < halves[0.99]

    def test_mean_ci_rejects_bad_confidence(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                mean_ci([1.0, 2.0], confidence=bad)

    def test_add_failure_keeps_table_rectangular(self):
        r = ExperimentResult("X", "t", ["benchmark", "a", "b", "c"])
        r.add_row("ok_bench", 1.0, 2.0, 3.0)
        r.add_failure("bad_bench", "RuntimeError: it broke")
        assert len(r.rows) == 2
        assert len(r.rows[1]) == len(r.columns)
        assert r.failures == ["X/bad_bench: RuntimeError: it broke"]
        text = r.render()
        assert "FAILED: RuntimeError: it broke" in text
        # A long error is truncated in the cell, kept whole in failures.
        r.add_failure("worse", "E" * 100)
        assert any(len(str(v)) <= 40 for v in r.rows[2])
        assert r.failures[1].endswith("E" * 100)

    def test_render_table_alignment(self):
        text = render_table(["col"], [["x"], ["longer"]])
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1


class TestFig6:
    def test_headline_shape(self):
        result = fig6_software.run(scale="test")
        assert len(result.rows) == 25  # canneal excluded
        detection = result.column("detection only")
        full = result.column("full CLEAN")
        mean_det = sum(detection) / len(detection)
        mean_full = sum(full) / len(full)
        # Paper: detection 5.8x of full 7.8x.
        assert 4.5 < mean_det < 7.5
        assert 6.0 < mean_full < 10.0
        assert mean_full > mean_det

    def test_lu_benchmarks_worst(self):
        result = fig6_software.run(scale="test")
        by_det = sorted(
            zip(result.column("detection only"), result.column("benchmark")),
            reverse=True,
        )
        worst_two = {name for _, name in by_det[:2]}
        assert worst_two == {"lu_cb", "lu_ncb"}

    def test_streamcluster_sync_speedup(self):
        result = fig6_software.run(scale="test")
        assert result.row_for("streamcluster")[1] < 1.0


class TestAggregateFailurePayloads:
    def test_fig7_aggregate_handles_error_payload(self):
        payloads = [
            {"benchmark": "fft", "density": 0.1, "detection": 2.0},
            {"benchmark": "barnes", "error": "Timeout: job exceeded 5.0s"},
            {"benchmark": "lu_cb", "density": 0.4, "detection": 6.0},
        ]
        result = fig7_freq.aggregate(payloads)
        assert len(result.rows) == 3
        assert result.failures == [
            "Figure 7/barnes: Timeout: job exceeded 5.0s"
        ]
        # Summary computed from the surviving payloads only.
        assert any("lu_cb" in line for line in result.summary)

    def test_fig6_aggregate_all_failed_has_no_summary(self):
        result = fig6_software.aggregate(
            [{"benchmark": "fft", "error": "boom"}]
        )
        assert result.summary == []
        assert result.failures


class TestFig7:
    def test_lu_highest_density(self):
        result = fig7_freq.run(scale="test")
        densities = dict(
            zip(result.column("benchmark"), result.column("shared-access density"))
        )
        top2 = sorted(densities, key=densities.get, reverse=True)[:2]
        assert set(top2) == {"lu_cb", "lu_ncb"}

    def test_density_correlates_with_slowdown(self):
        result = fig7_freq.run(scale="test")
        pairs = sorted(
            zip(
                result.column("shared-access density"),
                result.column("detection slowdown"),
            )
        )
        # Spearman-ish: the top-density third must have a higher mean
        # slowdown than the bottom third.
        third = len(pairs) // 3
        low = sum(s for _, s in pairs[:third]) / third
        high = sum(s for _, s in pairs[-third:]) / third
        assert high > low


class TestFig8:
    def test_vectorization_always_helps(self):
        result = fig8_vector.run(scale="test")
        for row in result.rows:
            name, vec, scalar, gain = row[0], row[1], row[2], row[3]
            assert scalar >= vec, name
            assert gain >= 1.0

    def test_measured_properties(self):
        result = fig8_vector.run(scale="test")
        wides = result.column("wide-access %")
        uniforms = result.column("uniform-epoch %")
        assert sum(wides) / len(wides) > 80.0
        assert sum(uniforms) / len(uniforms) > 90.0

    def test_dedup_gains_least(self):
        """dedup's byte-granular accesses defeat the multi-byte fast
        path, so its gain is among the smallest."""
        result = fig8_vector.run(scale="test")
        gains = dict(zip(result.column("benchmark"), result.column("gain")))
        assert gains["dedup"] <= sorted(gains.values())[4]


class TestTable1:
    def test_roster_emerges(self):
        result = table1_rollover.run(scale="simlarge")
        names = set(result.column("benchmark"))
        assert names == set(table1_rollover.PAPER_ROSTER)

    def test_rates_and_costs_in_paper_band(self):
        result = table1_rollover.run(scale="simlarge")
        for row in result.rows:
            name, rollovers, rate, decrease = row
            assert rollovers >= 1
            assert 1.0 < rate < 100.0  # paper band: 4.9 - 34.8
            pct = float(decrease.rstrip("%"))
            assert 0.0 <= pct < 10.0  # paper: <= 2.4%


class TestSec62:
    def test_validation_passes(self):
        result = sec62_detection.run(scale="simsmall", runs=3)
        assert any("17/17" in line for line in result.summary)
        assert any("never raised: True" in line for line in result.summary)
        assert any("deterministic: True" in line for line in result.summary)

    def test_tsan_methodology(self):
        found = sec62_detection.tsan_methodology_check(scale="simsmall")
        assert len(found) == 17
        assert all(found.values()), [k for k, v in found.items() if not v]


class TestHardwareExperiments:
    def test_fig9_shape(self, hw_traces):
        result = fig9_hardware.run(traces=hw_traces)
        slowdowns = dict(
            zip(result.column("benchmark"), result.column("slowdown"))
        )
        mean = sum(slowdowns.values()) / len(slowdowns)
        assert 1.03 < mean < 1.30  # paper: 10.4%
        assert max(slowdowns, key=slowdowns.get) == "dedup"
        assert slowdowns["dedup"] < 1.7  # paper: 46.7%
        assert all(s >= 1.0 for s in slowdowns.values())

    def test_fig10_shape(self, hw_traces):
        result = fig10_breakdown.run(traces=hw_traces)
        expanded = dict(
            zip(result.column("benchmark"), result.column("expanded"))
        )
        # dedup is the only benchmark whose accesses are mostly expanded.
        assert expanded["dedup"] > 50.0
        others = [v for k, v in expanded.items() if k != "dedup"]
        assert max(others) < 10.0
        # expansions are vanishingly rare everywhere (steady state).
        assert max(result.column("expand")) < 0.1

    def test_fig11_shape(self, hw_traces):
        result = fig11_epochsize.run(traces=hw_traces)
        clean = dict(zip(result.column("benchmark"), result.column("CLEAN")))
        bound = dict(
            zip(result.column("benchmark"), result.column("1B epochs"))
        )
        wide = dict(
            zip(result.column("benchmark"), result.column("4B epochs"))
        )
        # CLEAN tracks the 1-byte bound except dedup (paper's finding).
        for name in clean:
            if name != "dedup":
                assert clean[name] == pytest.approx(bound[name], rel=0.05)
        assert clean["dedup"] > bound["dedup"]
        # 4-byte epochs hurt the big-footprint benchmarks most.
        deltas = {k: wide[k] / clean[k] for k in clean}
        worst3 = sorted(deltas, key=deltas.get, reverse=True)[:3]
        assert set(worst3) == {"ocean_cp", "ocean_ncp", "radix"}
