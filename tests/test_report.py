"""Integration: the all-experiments report generator (fast mode)."""

from repro.experiments.report import run_all


class TestReport:
    def test_fast_report_produces_all_experiments(self):
        results = run_all(fast=True)
        names = [r.experiment for r in results]
        assert names == [
            "Section 6.2.2",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Table 1",
            "Figure 9",
            "Figure 10",
            "Figure 11",
            "Ablation A1",
            "Ablation A2",
            "Ablation A3",
            "Ablation A4",
        ]
        for result in results:
            assert result.rows, result.experiment
            rendered = result.render()
            assert result.title in rendered
