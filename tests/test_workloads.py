"""Tests for the SPLASH-2/PARSEC workload models."""

import pytest

from repro.clean import run_clean
from repro.core import CleanDetector
from repro.clean import CleanMonitor
from repro.runtime import RandomPolicy, RoundRobinPolicy, TraceRecorder
from repro.workloads import (
    ALL_BENCHMARKS,
    BENCHMARKS,
    HW_BENCHMARKS,
    RACE_FREE_VARIANTS,
    RACY_BENCHMARKS,
    ROLLOVER_BENCHMARKS,
    BenchmarkSpec,
    build_program,
    get_benchmark,
)

RACE_FREE_STYLES = [b for b in ALL_BENCHMARKS if b.style != "lock_free"]


class TestSuiteInventory:
    def test_26_benchmarks(self):
        """The paper runs 26 benchmarks (freqmine excluded)."""
        assert len(ALL_BENCHMARKS) == 26

    def test_17_racy(self):
        """17 of 26 unmodified benchmarks contain races (Section 6.1)."""
        assert len(RACY_BENCHMARKS) == 17

    def test_canneal_is_racy_only(self):
        spec = get_benchmark("canneal")
        assert spec.racy
        assert spec.style == "lock_free"
        assert "canneal" not in RACE_FREE_VARIANTS

    def test_race_free_variants_are_25(self):
        """All but canneal have a race-free variant (Section 6.1)."""
        assert len(RACE_FREE_VARIANTS) == 25

    def test_facesim_omitted_from_hw(self):
        """facesim is excluded from simulation for run time (§6.3.1)."""
        assert "facesim" not in HW_BENCHMARKS
        assert get_benchmark("facesim").hw_omitted

    def test_suites_have_right_sizes(self):
        splash = [b for b in ALL_BENCHMARKS if b.suite == "splash2"]
        parsec = [b for b in ALL_BENCHMARKS if b.suite == "parsec"]
        assert len(splash) == 14
        assert len(parsec) == 12

    def test_freqmine_absent(self):
        assert "freqmine" not in BENCHMARKS

    def test_rollover_roster(self):
        assert ROLLOVER_BENCHMARKS == [
            "barnes", "fmm", "radiosity", "facesim", "fluidanimate",
        ]

    def test_dedup_is_byte_granular(self):
        assert get_benchmark("dedup").byte_granular

    def test_lu_highest_density(self):
        """Figure 7: lu_cb and lu_ncb have the highest shared densities."""
        by_density = sorted(
            ALL_BENCHMARKS, key=lambda b: b.shared_access_density, reverse=True
        )
        assert {by_density[0].name, by_density[1].name} == {"lu_cb", "lu_ncb"}

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            get_benchmark("nonesuch")


class TestSpecValidation:
    def test_racy_needs_density(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(
                name="x", suite="s", style="task_locks",
                work_items=10, shared_per_item=1, compute_per_item=1,
                racy=True, race_density=0.0,
            )

    def test_density_needs_racy(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(
                name="x", suite="s", style="task_locks",
                work_items=10, shared_per_item=1, compute_per_item=1,
                racy=False, race_density=0.5,
            )

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(
                name="x", suite="s", style="weird",
                work_items=10, shared_per_item=1, compute_per_item=1,
            )

    def test_scaling(self):
        spec = get_benchmark("fft")
        assert spec.items_at("native") == spec.work_items
        assert spec.items_at("simsmall") == max(8, spec.work_items // 8)
        with pytest.raises(ValueError):
            spec.items_at("enormous")

    def test_derived_quantities(self):
        spec = get_benchmark("lu_cb")
        assert 0 < spec.shared_access_density < 1
        assert spec.fraction_wide > 0.9
        assert spec.mean_access_size > 4


class TestProgramConstruction:
    def test_racy_variant_of_race_free_spec_rejected(self):
        with pytest.raises(ValueError):
            build_program(get_benchmark("fft"), racy=True)

    def test_race_free_canneal_rejected(self):
        with pytest.raises(ValueError):
            build_program(get_benchmark("canneal"), racy=False)

    @pytest.mark.parametrize(
        "name", ["fft", "barnes", "dedup", "canneal"],
        ids=["barrier", "locks", "pipeline", "lockfree"],
    )
    def test_each_style_runs(self, name):
        spec = get_benchmark(name)
        program = build_program(spec, scale="test", racy=spec.style == "lock_free")
        result = program.run(max_threads=16)
        assert result.race is None  # no detector attached
        assert result.thread_results[0] is not None

    def test_same_seed_same_trace(self):
        spec = get_benchmark("barnes")
        fingerprints = set()
        for _ in range(2):
            rec = TraceRecorder()
            build_program(spec, scale="test", seed=7).run(
                policy=RoundRobinPolicy(), monitors=[rec], max_threads=16
            )
            fingerprints.add(
                tuple(
                    (e.kind, e.address, e.size)
                    for e in rec.trace.events(1)
                )
            )
        assert len(fingerprints) == 1

    def test_different_seeds_differ(self):
        spec = get_benchmark("barnes")
        traces = []
        for seed in (1, 2):
            rec = TraceRecorder()
            build_program(spec, scale="test", seed=seed).run(
                policy=RoundRobinPolicy(), monitors=[rec], max_threads=16
            )
            traces.append(
                tuple((e.kind, e.address) for e in rec.trace.events(1))
            )
        assert traces[0] != traces[1]


class TestRaceBehaviour:
    @pytest.mark.parametrize("spec", RACE_FREE_STYLES, ids=lambda s: s.name)
    def test_race_free_variants_never_raise(self, spec):
        result = run_clean(
            build_program(spec, scale="test", racy=False, seed=3),
            policy=RandomPolicy(3),
            max_threads=16,
        )
        assert result.race is None, f"{spec.name}: {result.race}"

    @pytest.mark.parametrize(
        "spec", [b for b in ALL_BENCHMARKS if b.racy], ids=lambda s: s.name
    )
    def test_racy_variants_raise_at_simsmall(self, spec):
        result = run_clean(
            build_program(spec, scale="simsmall", racy=True, seed=0),
            policy=RandomPolicy(0),
            max_threads=16,
        )
        assert result.race is not None, f"{spec.name} did not race"
        assert result.race.kind in {"WAW", "RAW"}

    def test_traces_mark_private_accesses(self):
        rec = TraceRecorder()
        build_program(get_benchmark("fft"), scale="test").run(
            policy=RoundRobinPolicy(), monitors=[rec], max_threads=16
        )
        private = sum(
            1 for e in rec.trace if e.kind != "S" and e.private
        )
        shared = rec.trace.shared_accesses()
        assert private > 0
        assert shared > 0

    def test_dedup_trace_has_byte_writes(self):
        rec = TraceRecorder()
        build_program(get_benchmark("dedup"), scale="test").run(
            policy=RoundRobinPolicy(), monitors=[rec], max_threads=16
        )
        byte_writes = sum(
            1
            for e in rec.trace
            if e.kind == "W" and e.size == 1 and not e.private
        )
        assert byte_writes > 0
