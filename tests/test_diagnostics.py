"""Tests for the race-diagnostics monitor."""

import pytest

from repro.clean import CleanMonitor
from repro.core import CleanDetector
from repro.diagnostics import RaceContextMonitor
from repro.runtime import (
    Acquire,
    Compute,
    Join,
    Lock,
    Program,
    Read,
    Release,
    ScriptedPolicy,
    Spawn,
    Write,
)


def run_with_context(main, policy=None):
    context = RaceContextMonitor()
    clean = CleanMonitor(detector=CleanDetector(max_threads=8))
    result = Program(main).run(
        policy=policy, monitors=[context, clean], max_threads=8
    )
    return result, context


class TestRaceReports:
    def waw_program(self):
        def writer(ctx, addr):
            yield Write(addr, 4, 7)

        def main(ctx):
            addr = ctx.alloc(4)
            kid = yield Spawn(writer, (addr,))
            yield Compute(3)
            yield Write(addr, 4, 1)
            yield Join(kid)

        return main

    def test_waw_report_names_both_sides(self):
        result, context = run_with_context(
            self.waw_program(), ScriptedPolicy([0, 1, 0, 0])
        )
        assert result.race is not None
        report = context.report(result.race)
        assert report.kind == "WAW"
        assert report.current.tid == 0
        assert report.current.is_write
        assert report.previous is not None
        assert report.previous.tid == 1
        assert report.previous.is_write

    def test_raw_report_current_is_read(self):
        def writer(ctx, addr):
            yield Write(addr, 4, 7)

        def main(ctx):
            addr = ctx.alloc(4)
            kid = yield Spawn(writer, (addr,))
            yield Read(addr, 4)
            yield Join(kid)

        result, context = run_with_context(main, ScriptedPolicy([0, 1, 0]))
        assert result.race is not None and result.race.kind == "RAW"
        report = context.report(result.race)
        assert not report.current.is_write
        assert report.previous.is_write

    def test_render_mentions_address_and_threads(self):
        result, context = run_with_context(
            self.waw_program(), ScriptedPolicy([0, 1, 0, 0])
        )
        text = context.render(result.race)
        assert f"{result.race.address:#x}" in text
        assert "thread 1" in text and "thread 0" in text
        assert "not ordered" in text

    def test_region_indices_reflect_sync(self):
        lock = Lock()

        def victim(ctx, addr):
            yield Acquire(lock)
            yield Release(lock)
            yield Write(addr, 4, 9)  # in its SFR #2

        def main(ctx):
            addr = ctx.alloc(4)
            kid = yield Spawn(victim, (addr,))
            yield Write(addr, 4, 1)
            yield Join(kid)

        # let the victim run through its lock + write first, then main
        result, context = run_with_context(
            main, ScriptedPolicy([0, 1, 1, 1, 0])
        )
        assert result.race is not None
        report = context.report(result.race)
        assert report.previous.region_index == 2

    def test_no_race_no_current_access_needed(self):
        def main(ctx):
            addr = ctx.alloc(4)
            yield Write(addr, 4, 5)
            yield Read(addr, 4)

        result, context = run_with_context(main)
        assert result.race is None

    def test_private_accesses_not_tracked(self):
        def main(ctx):
            addr = ctx.alloc(4)
            yield Write(addr, 4, 5, private=True)

        result, context = run_with_context(main)
        assert context._last_writer == {}
