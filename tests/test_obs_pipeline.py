"""The cross-process telemetry pipeline (repro.obs + repro.exec).

Covers the mergeable-metrics semantics, the tracer hardening, the
Prometheus exposition, the status file, the HTTP endpoint, the hot-site
profiler, and — end to end — the worker telemetry pipeline: serial and
parallel report sweeps must aggregate identical totals, and cache-served
jobs must replay the telemetry of their original execution.
"""

import json
import urllib.request

import pytest

from repro.exec import CheckpointStore, Job, JobRunner, run_job_traced
from repro.obs import (
    MetricsRegistry,
    SiteProfiler,
    StatusFile,
    TelemetryServer,
    Tracer,
    current_registry,
    current_sites,
    current_tracer,
    prom_name,
    render_prom,
    telemetry_scope,
)


def _job(fn, name="", **config):
    return Job(fn=f"tests._runner_jobs:{fn}", config=config, name=name)


def _clean_jobs(n=3, runs=2):
    return [
        _job("clean_workload", name=f"clean-{seed}", seed=seed, runs=runs)
        for seed in range(n)
    ]


def _clean_totals(registry):
    return {
        name: value
        for name, value in registry.snapshot().items()
        if name.startswith("clean.")
    }


# ---------------------------------------------------------------------------
# merge semantics


class TestMergeSemantics:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x", 3)
        b.inc("x", 4)
        b.inc("y", 1)
        a.merge_snapshot(b.snapshot(), kinds=b.kinds())
        assert a.value("x") == 7
        assert a.value("y") == 1

    def test_gauges_last_write_wins_and_high_water_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.set_gauge("g", 10)
        b.set_gauge("g", 4)
        a.merge_snapshot(b.snapshot(), kinds=b.kinds())
        assert a.value("g") == 4  # last write (submission order) wins
        gauge = next(i for i in a.instruments() if i.name == "g")
        assert gauge.high_water == 10  # but the peak survives

    def test_kinds_map_disambiguates_scalars(self):
        # A scalar snapshot value alone cannot say counter-or-gauge; the
        # kinds map must make a gauge merge as a gauge in a fresh parent.
        worker = MetricsRegistry()
        worker.set_gauge("depth", 5)
        worker.inc("hits", 2)
        parent = MetricsRegistry()
        parent.merge_snapshot(worker.snapshot(), kinds=worker.kinds())
        assert parent.kinds() == {"depth": "gauge", "hits": "counter"}
        parent.merge_snapshot(worker.snapshot(), kinds=worker.kinds())
        assert parent.value("depth") == 5  # gauge: not doubled
        assert parent.value("hits") == 4  # counter: added

    def test_unknown_scalar_defaults_to_counter(self):
        parent = MetricsRegistry()
        parent.merge_snapshot({"mystery": 3})
        parent.merge_snapshot({"mystery": 3})
        assert parent.value("mystery") == 6
        assert parent.kinds()["mystery"] == "counter"

    def test_histograms_merge_bucket_by_bucket(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (1, 5):
            a.observe("h", v)
        for v in (5, 500000):
            b.observe("h", v)
        a.merge_snapshot(b.snapshot(), kinds=b.kinds())
        snap = a.snapshot()["h"]
        assert snap["count"] == 4
        assert snap["sum"] == 500011
        assert snap["max"] == 500000
        assert snap["min"] == 1

    def test_incompatible_histogram_bounds_raise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=[1, 2, 3]).observe(1)
        b.histogram("h", bounds=[10, 20]).observe(1)
        with pytest.raises(ValueError):
            a.merge_snapshot(b.snapshot(), kinds=b.kinds())

    def test_merge_registry_whole(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n")
        b.inc("n", 2)
        b.observe("h", 3)
        a.merge(b)
        assert a.value("n") == 3
        assert a.snapshot()["h"]["count"] == 1

    def test_merge_is_associative_for_counters(self):
        parts = []
        for amount in (1, 10, 100):
            r = MetricsRegistry()
            r.inc("x", amount)
            parts.append((r.snapshot(), r.kinds()))
        left = MetricsRegistry()
        for snap, kinds in parts:
            left.merge_snapshot(snap, kinds=kinds)
        right = MetricsRegistry()
        for snap, kinds in reversed(parts):
            right.merge_snapshot(snap, kinds=kinds)
        assert left.value("x") == right.value("x") == 111


class TestRegistryDiff:
    def test_histogram_diff_shape(self):
        r = MetricsRegistry()
        r.observe("h", 5)
        before = r.snapshot()
        r.observe("h", 5)
        r.observe("h", 10 ** 9)  # overflow bucket
        delta = MetricsRegistry.diff(before, r.snapshot())
        assert delta["h"]["count"] == 2
        assert delta["h"]["sum"] == 5 + 10 ** 9
        buckets = dict(
            (tuple(b) if isinstance(b, list) else b, n)
            for b, n in delta["h"]["buckets"]
        )
        assert buckets[8] == 1  # one more in the <=8 bucket
        assert buckets[None] == 1  # one overflow

    def test_histogram_absent_before_diffs_from_zero(self):
        r = MetricsRegistry()
        before = r.snapshot()
        r.observe("h", 1)
        delta = MetricsRegistry.diff(before, r.snapshot())
        assert delta["h"]["count"] == 1


# ---------------------------------------------------------------------------
# tracer hardening


class TestTracerHardening:
    def test_out_of_order_close_keeps_parent_attribution(self):
        tracer = Tracer()
        outer = tracer.start_span("outer")
        inner = tracer.start_span("inner")
        # Close the parent first: the child must stay open and a new
        # span opened now must still be attributed to the child.
        tracer.end_span(outer)
        grand = tracer.start_span("grand")
        assert grand.parent_id == inner.span_id
        tracer.end_span(grand)
        tracer.end_span(inner)
        assert [s.name for s in tracer.finished] == ["outer", "grand", "inner"]

    def test_double_close_is_stack_noop(self):
        tracer = Tracer()
        a = tracer.start_span("a")
        b = tracer.start_span("b")
        tracer.end_span(b)
        tracer.end_span(b)  # double close must not pop "a"
        c = tracer.start_span("c")
        assert c.parent_id == a.span_id

    def test_span_context_records_error_attr(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("work"):
                raise ValueError("boom")
        (span,) = tracer.finished
        assert span.attrs["error"] == "ValueError"

    def test_ingest_merges_attrs_and_reexports(self, tmp_path):
        worker = Tracer()
        with worker.span("job.run", seed=1):
            pass
        records = [s.to_record() for s in worker.finished]
        out = tmp_path / "spans.jsonl"
        from repro.obs import JsonlExporter

        exporter = JsonlExporter(str(out))
        parent = Tracer(exporter)
        assert parent.ingest(records, job="clean-1") == 1
        exporter.close()
        assert parent.ingested[0]["attrs"] == {"seed": 1, "job": "clean-1"}
        header_line, line = out.read_text().strip().splitlines()
        assert json.loads(header_line)["type"] == "header"
        assert json.loads(line)["attrs"]["job"] == "clean-1"


# ---------------------------------------------------------------------------
# ambient context


class TestAmbientContext:
    def test_outside_any_scope_is_none(self):
        assert current_registry() is None
        assert current_tracer() is None
        assert current_sites() is None

    def test_scope_nesting_and_restore(self):
        outer_reg = MetricsRegistry()
        with telemetry_scope(registry=outer_reg):
            assert current_registry() is outer_reg
            with telemetry_scope() as inner:
                assert current_registry() is inner.registry
                assert current_registry() is not outer_reg
            assert current_registry() is outer_reg
        assert current_registry() is None


# ---------------------------------------------------------------------------
# exposition: prom text, status file, HTTP endpoint


class TestProm:
    def test_names_sanitized(self):
        assert prom_name("clean.same_epoch.hits") == "clean_same_epoch_hits"
        assert prom_name("9lives") == "_9lives"

    def test_render_parses_and_covers_all_kinds(self):
        r = MetricsRegistry()
        r.inc("clean.checks", 7)
        r.set_gauge("runner.workers", 4)
        for v in (1, 5, 10 ** 9):
            r.observe("sfr.length", v)
        text = render_prom(r)
        samples = {}
        helped = set()
        for line in text.splitlines():
            assert line, "no blank lines in exposition"
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split()
                assert kind in ("counter", "gauge", "histogram")
                continue
            if line.startswith("# HELP "):
                helped.add(line.split()[2])
                continue
            name_and_labels, value = line.rsplit(" ", 1)
            float(value)  # must parse
            samples[name_and_labels] = value
        # Every family carries a HELP line.
        assert {"clean_checks", "runner_workers", "sfr_length"} <= helped
        assert samples["clean_checks"] == "7"
        assert samples["runner_workers"] == "4"
        assert samples["runner_workers_high_water"] == "4"
        # Histogram: cumulative buckets ending at +Inf == count.
        assert samples['sfr_length_bucket{le="+Inf"}'] == "3"
        assert samples["sfr_length_count"] == "3"
        assert float(samples["sfr_length_sum"]) == 1 + 5 + 10 ** 9

    def test_histogram_buckets_are_cumulative(self):
        r = MetricsRegistry()
        h = r.histogram("h", bounds=[1, 2, 4])
        for v in (1, 2, 2, 100):
            h.observe(v)
        text = render_prom(r)
        values = {
            line.rsplit(" ", 1)[0]: float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if not line.startswith("#")
        }
        assert values['h_bucket{le="1"}'] == 1
        assert values['h_bucket{le="2"}'] == 3
        assert values['h_bucket{le="4"}'] == 3
        assert values['h_bucket{le="+Inf"}'] == 4


class TestStatusFile:
    def test_round_trip_adds_updated_at(self, tmp_path):
        sf = StatusFile(tmp_path / "status.json")
        assert sf.read() is None
        sf.write({"state": "running", "done": 3})
        payload = sf.read()
        assert payload["state"] == "running"
        assert payload["done"] == 3
        assert "updated_at" in payload

    def test_corrupt_reads_none_and_remove(self, tmp_path):
        path = tmp_path / "status.json"
        sf = StatusFile(path)
        path.write_text("{truncated")
        assert sf.read() is None
        sf.write({"state": "done"})
        sf.remove()
        assert sf.read() is None
        sf.remove()  # idempotent


class TestTelemetryServer:
    def test_metrics_and_status_endpoints(self):
        registry = MetricsRegistry()
        registry.inc("clean.checks", 42)
        server = TelemetryServer(
            registry=registry,
            status_fn=lambda: {"state": "running", "done": 1},
            port=0,
        )
        server.start()
        try:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics") as resp:
                assert resp.status == 200
                assert "text/plain" in resp.headers["Content-Type"]
                body = resp.read().decode()
            assert "clean_checks 42" in body
            with urllib.request.urlopen(f"{base}/status") as resp:
                status = json.load(resp)
            assert status == {"state": "running", "done": 1}
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{base}/nope")
            assert err.value.code == 404
        finally:
            server.stop()

    def test_context_manager_and_live_updates(self):
        registry = MetricsRegistry()
        with TelemetryServer(registry=registry, port=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            registry.inc("x")
            with urllib.request.urlopen(f"{base}/metrics") as resp:
                assert "x 1" in resp.read().decode()
            registry.inc("x")
            with urllib.request.urlopen(f"{base}/metrics") as resp:
                assert "x 2" in resp.read().decode()


# ---------------------------------------------------------------------------
# hot-site profiler


class TestSiteProfiler:
    def _filled(self):
        p = SiteProfiler()
        for _ in range(5):
            p.note_check(1, 0x10, is_write=True)
        for _ in range(3):
            p.note_check(2, 0x20, is_write=False)
        p.note_same_epoch(1, 0x20, is_write=False)
        p.note_sync(1)
        p.note_check(1, 0x30, is_write=True)
        p.note_race(0x20)
        return p

    def test_ranking_is_deterministic_by_work_then_races(self):
        p = self._filled()
        top = p.top_sites()
        assert [addr for addr, _ in top] == [0x10, 0x20, 0x30]
        assert p.site_rank(0x20) == 2
        assert p.site_rank(0xDEAD) is None
        # 0x20: 3 checks + 1 same-epoch = same work as ... no; verify stats
        assert p.addresses[0x20] == {
            "checks": 3, "reads": 3, "writes": 0, "same_epoch": 1, "races": 1
        }

    def test_regions_track_sfr_boundaries(self):
        p = self._filled()
        assert p.regions == {"t1/r0": 5, "t2/r0": 3, "t1/r1": 1}

    def test_merge_payload_round_trip(self):
        a, b = self._filled(), self._filled()
        payload = json.loads(json.dumps(b.to_payload()))  # JSON-clean
        a.merge_payload(payload)
        assert a.addresses[0x10]["checks"] == 10
        assert a.addresses[0x20]["races"] == 2
        assert a.regions["t1/r0"] == 10

    def test_sampling_weights_and_races_never_sampled(self):
        p = SiteProfiler(sample_every=4)
        for _ in range(8):
            p.note_check(1, 0x10, is_write=False)
        p.note_race(0x10)
        assert p.addresses[0x10]["checks"] == 8  # 2 events * weight 4
        assert p.addresses[0x10]["races"] == 1

    def test_render_tables(self):
        text = self._filled().render(k=2)
        assert "top 2 addresses" in text
        assert "0x0000000010" in text
        assert "t1/r0" in text


# ---------------------------------------------------------------------------
# the worker pipeline, end to end


class TestWorkerPipeline:
    def test_run_job_traced_payload(self):
        job = _job("clean_workload", name="clean-0", seed=0, runs=2)
        value, telem = run_job_traced(job, sites=True)
        assert value["runs"] == 2
        assert telem["metrics"]["clean.runs"] == 2
        assert telem["metrics"]["clean.checks"] > 0
        assert telem["kinds"]["clean.checks"] == "counter"
        names = [r["name"] for r in telem["spans"]]
        assert "job.run" in names
        assert telem["sites"]["addresses"]  # profiled something

    def test_serial_equals_parallel_totals(self):
        jobs = _clean_jobs()
        serial_reg = MetricsRegistry()
        JobRunner(registry=serial_reg, tracer=Tracer()).run(jobs)
        par_reg = MetricsRegistry()
        par_runner = JobRunner(
            workers=2, registry=par_reg, tracer=Tracer(), retries=0
        )
        par_runner.run(jobs)
        serial_totals = _clean_totals(serial_reg)
        assert serial_totals["clean.runs"] == 6
        assert serial_totals == _clean_totals(par_reg)

    def test_cached_replay_has_identical_telemetry(self, tmp_path):
        store = CheckpointStore(tmp_path / "cache")
        jobs = _clean_jobs()
        cold_reg = MetricsRegistry()
        JobRunner(store=store, registry=cold_reg, tracer=Tracer()).run(jobs)
        warm_reg = MetricsRegistry()
        warm = JobRunner(store=store, registry=warm_reg, tracer=Tracer())
        results = warm.run(jobs)
        assert warm.stats["executed"] == 0
        assert warm.stats["cache_hits"] == len(jobs)
        assert all(r.cached and r.telemetry for r in results)
        assert _clean_totals(cold_reg) == _clean_totals(warm_reg)

    def test_telemetry_off_ships_no_payload(self):
        runner = JobRunner(job_telemetry=False, registry=MetricsRegistry())
        (res,) = runner.run([_job("double", x=1)])
        assert res.ok and res.telemetry is None
        assert not _clean_totals(runner.registry)

    def test_profile_sites_merges_across_jobs(self):
        runner = JobRunner(
            registry=MetricsRegistry(), tracer=Tracer(), profile_sites=True
        )
        runner.run(_clean_jobs(n=2, runs=1))
        assert runner.sites is not None
        assert runner.sites.addresses
        total_checks = sum(
            s["checks"] for s in runner.sites.addresses.values()
        )
        assert total_checks == runner.registry.value("clean.checks")

    def test_worker_spans_ingested_with_job_label(self):
        tracer = Tracer()
        runner = JobRunner(registry=MetricsRegistry(), tracer=tracer)
        runner.run(_clean_jobs(n=1, runs=1))
        job_runs = [
            r for r in tracer.ingested if r["name"] == "job.run"
        ]
        assert len(job_runs) == 1
        assert job_runs[0]["attrs"]["job"] == "clean-0"

    def test_status_file_lifecycle(self, tmp_path):
        status = StatusFile(tmp_path / "status.json")
        runner = JobRunner(status=status, status_interval=0.0)
        runner.run([_job("double", x=i) for i in range(3)])
        payload = status.read()
        assert payload["state"] == "done"
        assert payload["total"] == 3
        assert payload["done"] == 3 and payload["ok"] == 3
        assert payload["running"] == []

    def test_status_snapshot_shape_before_and_after(self):
        runner = JobRunner()
        snap = runner.status_snapshot()
        assert snap["state"] == "idle" and snap["total"] == 0
        runner.run([_job("double", x=1)])
        snap = runner.status_snapshot()
        assert snap["state"] == "done"
        assert snap["done"] == snap["total"] == 1


# ---------------------------------------------------------------------------
# fused vs unfused dispatch must not change telemetry (satellite)


class TestFusedTelemetry:
    def _counters(self, fused):
        from repro.obs import TelemetryMonitor
        from repro.runtime import RandomPolicy
        from repro.workloads import make_random_program

        registry = MetricsRegistry()
        program, _ = make_random_program(11)
        monitor = TelemetryMonitor(registry=registry)
        program.run(
            policy=RandomPolicy(11), monitors=[monitor], fused=fused
        )
        return registry.snapshot()

    def test_identical_counters_fused_vs_unfused(self):
        assert self._counters(fused=True) == self._counters(fused=False)


# ---------------------------------------------------------------------------
# race report provenance (diagnostics + SiteProfiler)


class TestRaceReportProvenance:
    def test_report_carries_hot_site_rank(self):
        from repro.clean import run_clean
        from repro.diagnostics import RaceContextMonitor
        from repro.runtime import RandomPolicy
        from repro.workloads import spilled_switch_program

        profiler = SiteProfiler()
        ctx = RaceContextMonitor()
        race = None
        for seed in range(20):
            with telemetry_scope(sites=profiler):
                result = run_clean(
                    spilled_switch_program(),
                    policy=RandomPolicy(seed),
                    extra_monitors=[ctx],
                )
            if result.race is not None:
                race = result.race
                break
        assert race is not None, "spilled-switch never raced in 20 seeds"
        report = ctx.report(race, sites=profiler)
        assert report.hot_site is not None
        assert report.hot_site["rank"] >= 1
        assert report.hot_site["races"] >= 1
        assert "hot-site profile: rank #" in report.render()

    def test_report_without_sites_unchanged(self):
        from repro.diagnostics import RaceContextMonitor
        from repro.core.exceptions import RaceException

        exc = RaceException(0x10, 1, 2, 3)
        report = RaceContextMonitor().report(exc)
        assert report.hot_site is None
        assert "hot-site" not in report.render()


# ---------------------------------------------------------------------------
# CLI formats


class TestProfileFormats:
    def test_format_json_parses(self, capsys):
        from repro.__main__ import main

        assert main(["profile", "swaptions", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benchmark"] == "swaptions"
        assert "metrics" in payload

    def test_format_prom_parses(self, capsys):
        from repro.__main__ import main

        assert main(["profile", "swaptions", "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE" in out
        for line in out.strip().splitlines():
            if line.startswith("#"):
                continue
            float(line.rsplit(" ", 1)[1])

    def test_sites_flag_prints_tables(self, capsys):
        from repro.__main__ import main

        assert main(["profile", "swaptions", "--sites"]) == 0
        out = capsys.readouterr().out
        assert "hot sites: top" in out
        assert "hot SFRs: top" in out

    def test_legacy_json_alias(self, capsys):
        from repro.__main__ import main

        assert main(["profile", "swaptions", "--json"]) == 0
        json.loads(capsys.readouterr().out)
