"""Tests for the baseline detectors (vector-clock, FastTrack, TSan-like)."""

import pytest

from repro.baselines import (
    FastTrackDetector,
    TsanLiteDetector,
    VcRaceDetector,
)
from repro.core.exceptions import (
    RawRaceException,
    WarRaceException,
    WawRaceException,
)


def fresh(cls, **kw):
    d = cls(max_threads=8, **kw)
    d.spawn_root()
    return d


@pytest.fixture(params=[VcRaceDetector, FastTrackDetector])
def precise(request):
    return fresh(request.param, record_only=False)


class TestPreciseDetectors:
    def test_waw(self, precise):
        child = precise.fork(0)
        precise.check_write(child, 100)
        with pytest.raises(WawRaceException):
            precise.check_write(0, 100)

    def test_raw(self, precise):
        child = precise.fork(0)
        precise.check_write(child, 100)
        with pytest.raises(RawRaceException):
            precise.check_read(0, 100)

    def test_war_detected_unlike_clean(self, precise):
        child = precise.fork(0)
        precise.check_read(child, 100)
        with pytest.raises(WarRaceException):
            precise.check_write(0, 100)

    def test_lock_ordering_suppresses(self, precise):
        child = precise.fork(0)
        precise.check_write(0, 10)
        precise.release(0, "L")
        precise.acquire(child, "L")
        precise.check_write(child, 10)  # ordered

    def test_join_ordering_suppresses(self, precise):
        child = precise.fork(0)
        precise.check_read(child, 10)
        precise.join(0, child)
        precise.check_write(0, 10)  # ordered via join; no WAR

    def test_same_thread_silent(self, precise):
        precise.check_write(0, 5)
        precise.check_read(0, 5)
        precise.check_write(0, 5)

    def test_concurrent_reads_no_race(self, precise):
        a = precise.fork(0)
        b = precise.fork(0)
        precise.check_read(a, 7)
        precise.check_read(b, 7)  # read-read never races


class TestVcFastTrackAgreement:
    """On identical access sequences, the two precise detectors agree."""

    SCENARIOS = [
        # (ops, expected kind or None); ops: (action, tid_slot, addr)
        ([("w", 1, 0), ("w", 0, 0)], "WAW"),
        ([("w", 1, 0), ("r", 0, 0)], "RAW"),
        ([("r", 1, 0), ("w", 0, 0)], "WAR"),
        ([("r", 1, 0), ("r", 0, 0)], None),
        ([("w", 0, 0), ("rel", 0, 0), ("acq", 1, 0), ("w", 1, 0)], None),
        ([("r", 0, 0), ("r", 1, 0), ("w", 0, 0)], "WAR"),
        ([("w", 0, 0), ("r", 0, 0), ("rel", 0, 0), ("acq", 1, 0), ("r", 1, 0)], None),
    ]

    @pytest.mark.parametrize("ops,expected", SCENARIOS)
    def test_agreement(self, ops, expected):
        outcomes = []
        for cls in (VcRaceDetector, FastTrackDetector):
            d = fresh(cls, record_only=True)
            child = d.fork(0)
            tids = {0: 0, 1: child}
            for action, slot, addr in ops:
                tid = tids[slot]
                if action == "w":
                    d.check_write(tid, addr)
                elif action == "r":
                    d.check_read(tid, addr)
                elif action == "rel":
                    d.release(tid, "L")
                elif action == "acq":
                    d.acquire(tid, "L")
            kinds = set(d.race_kinds())
            outcomes.append(kinds)
        assert outcomes[0] == outcomes[1]
        if expected is None:
            assert outcomes[0] == set()
        else:
            assert expected in outcomes[0]


class TestFastTrackSpecifics:
    def test_read_inflation_on_concurrent_reads(self):
        d = fresh(FastTrackDetector)
        a = d.fork(0)
        b = d.fork(0)
        d.check_read(a, 9)
        d.check_read(b, 9)
        assert d.read_inflations == 1

    def test_no_inflation_for_ordered_reads(self):
        d = fresh(FastTrackDetector)
        a = d.fork(0)
        d.check_read(0, 9)
        d.release(0, "L")
        d.acquire(a, "L")
        d.check_read(a, 9)
        assert d.read_inflations == 0

    def test_inflated_read_vc_catches_older_reader(self):
        """The case FastTrack keeps read VCs for: a write racing with a
        non-last read."""
        d = fresh(FastTrackDetector, record_only=True)
        a = d.fork(0)
        b = d.fork(0)
        d.check_read(a, 9)
        d.check_read(b, 9)
        # order b's read before the write, but not a's
        d.release(b, "L")
        d.acquire(0, "L")
        d.check_write(0, 9)
        assert "WAR" in d.race_kinds()

    def test_same_epoch_read_fast_path(self):
        d = fresh(FastTrackDetector)
        d.check_read(0, 3)
        d.check_read(0, 3)
        assert d.same_epoch_reads >= 1

    def test_write_resets_read_metadata(self):
        d = fresh(FastTrackDetector)
        d.check_read(0, 3)
        d.check_write(0, 3)
        assert d._meta[3].read == 0

    def test_metadata_words_grow_with_inflation(self):
        d = fresh(FastTrackDetector)
        a = d.fork(0)
        d.check_read(0, 3)
        before = d.metadata_words()
        d.check_read(a, 3)
        assert d.metadata_words() > before


class TestTsanLite:
    def test_reports_simple_race_without_stopping(self):
        d = fresh(TsanLiteDetector)
        child = d.fork(0)
        d.check_write(child, 64)
        d.check_write(0, 64)  # no exception
        assert d.racy
        assert d.race_kinds() == {"WAW": 1}

    def test_race_kind_classification(self):
        d = fresh(TsanLiteDetector)
        child = d.fork(0)
        d.check_write(child, 64)
        d.check_read(0, 64)
        assert "RAW" in d.race_kinds()

    def test_silent_on_synchronized_accesses(self):
        d = fresh(TsanLiteDetector)
        child = d.fork(0)
        d.check_write(0, 64)
        d.release(0, "L")
        d.acquire(child, "L")
        d.check_write(child, 64)
        assert not d.racy

    def test_misses_race_after_eviction(self):
        """The precision/size trade-off: with k=1 an older conflicting
        access is evicted and its race silently missed."""
        d = TsanLiteDetector(max_threads=8, k=1)
        d.spawn_root()
        a = d.fork(0)
        b = d.fork(0)
        d.check_write(a, 64)       # slot: a's write
        d.check_write(0, 72)       # same granule? no: 72 is next granule
        d.check_read(b, 64)        # races with a's write -> reported
        assert d.racy
        d2 = TsanLiteDetector(max_threads=8, k=1)
        d2.spawn_root()
        a = d2.fork(0)
        b = d2.fork(0)
        d2.check_write(a, 64)
        d2.check_write(b, 64)      # evicts a's slot (k=1) AND reports WAW
        waw_only = d2.race_kinds()
        d2.release(b, "L")
        d2.acquire(0, "L")         # reader ordered after b, NOT after a
        d2.check_read(0, 64)       # races with a's evicted write: missed
        assert d2.race_kinds() == waw_only

    def test_clean_detects_what_tsan_missed(self):
        """CLEAN's epoch metadata keeps the *last write* exactly, so the
        eviction miss above cannot happen for WAW/RAW."""
        from repro.core import CleanDetector, RawRaceException

        d = CleanDetector(max_threads=8)
        d.spawn_root()
        a = d.fork(0)
        b = d.fork(0)
        d.check_write(a, 64)
        with pytest.raises(WawRaceException):
            d.check_write(b, 64)

    def test_byte_masks_avoid_false_positives(self):
        """Disjoint bytes of one granule do not race."""
        d = fresh(TsanLiteDetector)
        a = d.fork(0)
        d.check_write(0, 64, 2)
        d.check_write(a, 66, 2)
        assert not d.racy

    def test_multigranule_access(self):
        d = fresh(TsanLiteDetector)
        a = d.fork(0)
        d.check_write(0, 60, 8)  # spans granules 56 and 64
        d.check_read(a, 63, 1)
        assert d.racy

    def test_deduplicated_reports(self):
        d = fresh(TsanLiteDetector)
        a = d.fork(0)
        d.check_write(0, 64)
        d.check_read(a, 64)
        d.check_read(a, 64)
        assert len(d.reports) == 1


class TestMetadataCostComparison:
    def test_clean_metadata_smaller_than_fasttrack(self):
        """Section 4.6: CLEAN's metadata is strictly no larger than
        FastTrack's for the same access pattern (no read metadata)."""
        from repro.core import CleanDetector

        clean = CleanDetector(max_threads=8)
        clean.spawn_root()
        ft = fresh(FastTrackDetector)
        ca = clean.fork(0)
        fa = ft.fork(0)
        # many concurrent reads: FastTrack inflates, CLEAN stores nothing
        for addr in range(0, 64):
            clean.check_read(0, addr)
            clean.check_read(ca, addr)
            ft.check_read(0, addr)
            ft.check_read(fa, addr)
        clean_words = clean.shadow.metadata_bytes // 4
        assert clean_words == 0  # reads never allocate epochs
        assert ft.metadata_words() > 0
