"""Exhaustive-schedule verification of CLEAN's semantics (Section 3.4).

These tests enumerate *every* interleaving of small bounded programs —
not a sample — and check the iff-property schedule by schedule.
"""

import pytest

from repro.baselines import VcRaceDetector
from repro.clean import CleanMonitor
from repro.core import CleanDetector
from repro.runtime import (
    Acquire,
    Compute,
    Join,
    Lock,
    Program,
    Read,
    Release,
    Spawn,
    Write,
)
from repro.runtime.explore import explore_results

MAX_THREADS = 8


def monitors_factory():
    return [
        CleanMonitor(detector=VcRaceDetector(max_threads=MAX_THREADS,
                                             record_only=True)),
        CleanMonitor(detector=CleanDetector(max_threads=MAX_THREADS)),
    ]


def check_iff_on_all_schedules(make_program, expect_some_races=None):
    """Every schedule: CLEAN raises iff the oracle saw WAW/RAW."""
    outcomes, stats = explore_results(
        make_program, monitors_factory, max_schedules=5000,
        max_threads=MAX_THREADS,
    )
    assert not stats.truncated, "program too large for exhaustive search"
    for result, monitors in outcomes:
        oracle = monitors[0].detector
        kinds = set(oracle.race_kinds())
        if result.race is not None:
            assert kinds & {"WAW", "RAW"}, (
                f"CLEAN raised {result.race.kind}; oracle saw {kinds}"
            )
        else:
            assert not (kinds & {"WAW", "RAW"}), (
                f"oracle saw {kinds}; CLEAN stayed silent"
            )
    if expect_some_races is True:
        assert stats.race_schedules > 0
        assert stats.completed_schedules > 0 or stats.race_schedules == stats.schedules
    if expect_some_races is False:
        assert stats.race_schedules == 0
    return stats


class TestExhaustiveIff:
    def test_write_write_race(self):
        def make():
            def writer(ctx, addr):
                yield Write(addr, 4, 7)

            def main(ctx):
                addr = ctx.alloc(4)
                kid = yield Spawn(writer, (addr,))
                yield Write(addr, 4, 1)
                yield Join(kid)

            return Program(main)

        stats = check_iff_on_all_schedules(make)
        # Unordered writes race on EVERY schedule.
        assert stats.race_schedules == stats.schedules

    def test_read_write_race_timing_dependent(self):
        """The paper's point: a read/write race is an exception only when
        it resolves as RAW; WAR-resolving schedules complete."""

        def make():
            def writer(ctx, addr):
                yield Compute(1)
                yield Write(addr, 4, 7)

            def main(ctx):
                addr = ctx.alloc(4)
                kid = yield Spawn(writer, (addr,))
                yield Read(addr, 4)
                yield Join(kid)

            return Program(main)

        stats = check_iff_on_all_schedules(make, expect_some_races=True)
        assert stats.completed_schedules > 0  # the WAR resolutions

    def test_locked_program_never_races(self):
        def make():
            lock = Lock()

            def worker(ctx, addr, value):
                yield Acquire(lock)
                yield Write(addr, 4, value)
                yield Release(lock)

            def main(ctx):
                addr = ctx.alloc(4)
                a = yield Spawn(worker, (addr, 1))
                b = yield Spawn(worker, (addr, 2))
                yield Join(a)
                yield Join(b)
                return (yield Read(addr, 4))

            return Program(main)

        stats = check_iff_on_all_schedules(make, expect_some_races=False)
        assert stats.schedules > 10  # genuinely many interleavings

    def test_fork_join_ordering_never_races(self):
        def make():
            def child(ctx, addr):
                value = yield Read(addr, 4)
                yield Write(addr, 4, value * 2)

            def main(ctx):
                addr = ctx.alloc(4)
                yield Write(addr, 4, 21)
                kid = yield Spawn(child, (addr,))
                yield Join(kid)
                return (yield Read(addr, 4))

            return Program(main)

        stats = check_iff_on_all_schedules(make, expect_some_races=False)
        for result, _ in explore_results(
            make, max_schedules=100, max_threads=MAX_THREADS
        )[0]:
            assert result.thread_results[0] == 42

    def test_three_thread_mixed(self):
        """Two protected writers plus one unprotected reader: some
        schedules race (RAW), some complete (WAR) — iff holds on all."""

        def make():
            lock = Lock()

            def writer(ctx, addr):
                yield Acquire(lock)
                yield Write(addr, 4, 5)
                yield Release(lock)

            def reader(ctx, addr):
                return (yield Read(addr, 4))

            def main(ctx):
                addr = ctx.alloc(4)
                a = yield Spawn(writer, (addr,))
                b = yield Spawn(reader, (addr,))
                yield Join(a)
                yield Join(b)

            return Program(main)

        check_iff_on_all_schedules(make, expect_some_races=True)


class TestExplorerMechanics:
    def test_single_thread_has_one_schedule(self):
        def make():
            def main(ctx):
                yield Compute(1)
                yield Compute(1)

            return Program(main)

        _, stats = explore_results(make, max_schedules=100)
        assert stats.schedules == 1

    def test_two_independent_threads_enumerate_interleavings(self):
        def make():
            def worker(ctx):
                yield Compute(1)
                yield Compute(1)

            def main(ctx):
                a = yield Spawn(worker)
                b = yield Spawn(worker)
                yield Join(a)
                yield Join(b)

            return Program(main)

        _, stats = explore_results(make, max_schedules=100000)
        assert not stats.truncated
        assert stats.schedules > 5

    def test_truncation_is_flagged(self):
        def make():
            def worker(ctx):
                for _ in range(4):
                    yield Compute(1)

            def main(ctx):
                kids = []
                for _ in range(3):
                    kids.append((yield Spawn(worker)))
                for kid in kids:
                    yield Join(kid)

            return Program(main)

        _, stats = explore_results(make, max_schedules=50)
        assert stats.truncated
        assert stats.schedules == 50

    def test_all_schedules_distinct_outcome_streams(self):
        """No schedule is visited twice: each explored prefix yields a
        distinct decision sequence."""
        seen = set()

        def make():
            def worker(ctx, addr, value):
                yield Write(addr, 4, value, private=True)

            def main(ctx):
                addr = ctx.alloc(8)
                a = yield Spawn(worker, (addr, 1))
                b = yield Spawn(worker, (addr + 4, 2))
                yield Join(a)
                yield Join(b)

            return Program(main)

        outcomes, stats = explore_results(make, max_schedules=10000)
        for result, _ in outcomes:
            key = tuple((c.tid, c.kind, c.target) for c in result.sync_log)
            seen.add((key, result.steps))
        # weaker than full distinctness (different schedules can produce
        # the same log), but the counts must at least be plausible
        assert stats.schedules >= len(seen) >= 1
