"""Tests for the repro.obs telemetry layer.

Covers the registry's counter/gauge/histogram semantics, the tracer's
JSONL round-trip, the TelemetryMonitor's scheduler integration — in
particular that stacking it before or after CleanMonitor cannot change
race verdicts — the hardware simulator's registry mirror, and the CLI
``--json`` / ``--telemetry`` surfaces.
"""

import json

import pytest

from repro.__main__ import main as cli_main
from repro.clean import CleanMonitor, run_clean
from repro.determinism.kendo import KendoGate
from repro.experiments.traces import record_trace
from repro.hardware import SimConfig, simulate_trace
from repro.obs import (
    SPANS_FORMAT_VERSION,
    JsonlExporter,
    MetricsRegistry,
    TelemetryMonitor,
    Timer,
    Tracer,
    publish_detector_metrics,
    read_jsonl,
)
from repro.runtime import Program, RandomPolicy
from repro.workloads import (
    get_benchmark,
    spilled_switch_program,
    torn_write_program,
)
from repro.workloads.randprog import make_random_program


class TestMetricsRegistry:
    def test_counter_semantics(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.value("a") == 5
        reg.counter("a").set_to(3)
        assert reg.value("a") == 3
        assert reg.counter("a") is reg.counter("a")

    def test_gauge_high_water(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 7)
        reg.set_gauge("g", 2)
        assert reg.value("g") == 2
        assert reg.gauge("g").high_water == 7

    def test_histogram_semantics(self):
        reg = MetricsRegistry()
        for v in (1, 2, 3, 1000):
            reg.observe("h", v)
        h = reg.histogram("h")
        assert h.count == 4
        assert h.total == 1006
        assert h.min == 1 and h.max == 1000
        assert h.mean == pytest.approx(251.5)
        snap = h.snapshot()
        assert sum(n for _, n in snap["buckets"]) == 4

    def test_histogram_overflow_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", bounds=[10, 100])
        h.observe(5)
        h.observe(5000)
        snap = h.snapshot()
        assert [10, 1] in snap["buckets"]
        assert [None, 1] in snap["buckets"]

    def test_kind_confusion_rejected(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_snapshot_diff(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.observe("h", 10)
        before = reg.snapshot()
        reg.inc("c", 3)
        reg.observe("h", 5)
        reg.inc("new", 1)
        delta = MetricsRegistry.diff(before, reg.snapshot())
        assert delta["c"] == 3
        assert delta["h"]["count"] == 1 and delta["h"]["sum"] == 5
        assert delta["h"]["buckets"] == [[8, 1]]  # 5 lands in the <=8 bucket
        assert delta["new"] == 1
        assert MetricsRegistry.diff(reg.snapshot(), reg.snapshot()) == {}

    def test_to_json_roundtrip_and_reset(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set_gauge("g", 1.5)
        reg.observe("h", 3)
        loaded = json.loads(reg.to_json())
        assert loaded["c"] == 2 and loaded["g"] == 1.5
        assert loaded["h"]["count"] == 1
        reg.reset()
        assert reg.value("c") == 0
        assert reg.value("g") == 0
        assert reg.histogram("h").count == 0
        assert set(reg.names()) == {"c", "g", "h"}

    def test_render_mentions_every_name(self):
        reg = MetricsRegistry()
        reg.inc("some.counter")
        reg.observe("some.hist", 4)
        text = reg.render()
        assert "some.counter" in text and "some.hist" in text


class TestTracer:
    def test_nesting_records_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Inner finished first, durations are monotonic and ordered.
        assert outer.duration >= inner.duration >= 0

    def test_exception_marks_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (span,) = tracer.spans_named("boom")
        assert span.attrs["error"] == "ValueError"
        assert span.end is not None

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        registry = MetricsRegistry()
        registry.inc("events", 2)
        with JsonlExporter(str(path)) as exporter:
            tracer = Tracer(exporter)
            with tracer.span("phase", step=1):
                tracer.event("marker", note="mid")
            exporter.export_metrics(registry)
        records = read_jsonl(str(path))
        kinds = [r["type"] for r in records]
        # header, marker, phase, metrics
        assert kinds == ["header", "span", "span", "metrics"]
        header = records[0]
        assert header["format"] == SPANS_FORMAT_VERSION
        assert header["clock"] == "perf_counter"
        by_name = {r["name"]: r for r in records if r["type"] == "span"}
        assert by_name["marker"]["parent_id"] == by_name["phase"]["span_id"]
        assert by_name["phase"]["attrs"] == {"step": 1}
        # Origin-relative timestamps: non-negative, small, and ordered.
        assert 0 <= by_name["phase"]["start"] <= by_name["marker"]["start"]
        assert records[-1]["metrics"]["events"] == 2

    def test_timer_is_monotonic(self):
        with Timer() as t:
            pass
        assert t.elapsed >= 0
        assert t.end is not None


def _corpus():
    """Programs whose verdicts the telemetry monitor must not disturb."""
    cases = [("racy", spilled_switch_program), ("torn", torn_write_program)]
    for seed in range(3):
        for prob in (0.0, 0.4):
            cases.append(
                (
                    f"rand{seed}-{prob}",
                    lambda s=seed, p=prob: make_random_program(
                        s, race_probability=p
                    )[0],
                )
            )
    return cases


def _verdict(result):
    race = result.race
    return (race.kind, race.address) if race is not None else None


class TestTelemetryMonitorIntegration:
    @pytest.mark.parametrize("name,make", _corpus())
    def test_verdicts_unchanged_any_stacking(self, name, make):
        for seed in range(3):
            plain = run_clean(make(), policy=RandomPolicy(seed))
            before = run_clean(
                make(),
                policy=RandomPolicy(seed),
                extra_monitors=[],
            )
            # Telemetry stacked *before* CleanMonitor.
            tel_first = TelemetryMonitor()
            monitors = [tel_first, CleanMonitor(), KendoGate()]
            prog = make()
            res_first = prog.run(
                policy=RandomPolicy(seed), monitors=monitors
            )
            # Telemetry stacked *after* CleanMonitor (via extra_monitors).
            tel_last = TelemetryMonitor()
            res_last = run_clean(
                make(), policy=RandomPolicy(seed), extra_monitors=[tel_last]
            )
            assert _verdict(plain) == _verdict(before)
            assert _verdict(plain) == _verdict(res_first), (name, seed)
            assert _verdict(plain) == _verdict(res_last), (name, seed)
            if plain.race is None:
                assert plain.fingerprint() == res_first.fingerprint()
                assert plain.fingerprint() == res_last.fingerprint()

    def test_counts_match_execution_result(self):
        registry = MetricsRegistry()
        telemetry = TelemetryMonitor(registry=registry)
        program, _ = make_random_program(7, race_probability=0.0)
        result = run_clean(
            program, extra_monitors=[telemetry], raise_on_race=True
        )
        assert registry.value("mem.reads.shared") == result.shared_reads
        assert registry.value("mem.writes.shared") == result.shared_writes
        assert registry.value("sync.commits") == len(result.sync_log)
        assert registry.value("run.steps") == result.steps
        assert registry.value("run.completed") == 1
        assert registry.value("runtime.threads.started") == \
            registry.value("runtime.threads.exited")
        assert registry.histogram("sfr.length").count > 0
        assert 0.0 <= telemetry.shared_fraction <= 1.0
        table = telemetry.thread_table()
        assert sum(c["reads"] + c["writes"] for c in table.values()) > 0

    def test_lock_contention_counted(self):
        # All threads hammer one lock: some acquisition must be contended.
        from repro.runtime import Acquire, Compute, Join, Release, Spawn
        from repro.runtime.sync import Lock

        lock = Lock("hot")

        def worker(ctx):
            for _ in range(5):
                yield Acquire(lock)
                yield Compute(3)
                yield Release(lock)

        def main(ctx):
            kids = []
            for _ in range(3):
                kids.append((yield Spawn(worker, ())))
            for kid in kids:
                yield Join(kid)

        registry = MetricsRegistry()
        run_clean(
            Program(main),
            extra_monitors=[TelemetryMonitor(registry=registry)],
            raise_on_race=True,
        )
        assert registry.value("sync.acquires") >= 15
        assert registry.value("sync.contended_acquires") > 0
        assert registry.value("sync.ops.Acquire") >= 15

    def test_clean_monitor_publishes_detector_metrics(self):
        registry = MetricsRegistry()
        program, _ = make_random_program(3, race_probability=0.0)
        run_clean(program, registry=registry, raise_on_race=True)
        assert registry.value("detector.reads") > 0
        assert registry.value("detector.writes") > 0
        assert registry.value("detector.epoch_table.touched_bytes") > 0
        assert registry.value("detector.races_raised") == 0

    def test_publish_works_for_baseline_detectors(self):
        from repro.baselines import FastTrackDetector

        detector = FastTrackDetector(max_threads=4)
        detector.spawn_root()
        detector.fork(0)
        detector.release(0, "L")
        detector.acquire(1, "L")
        detector.check_write(0, 0x10, 4)
        registry = MetricsRegistry()
        publish_detector_metrics(detector, registry)
        assert registry.value("detector.sync_ops") == 2
        assert registry.value("detector.live_threads") == 2


class TestSimulatorRegistry:
    def test_sim_stats_mirrored_without_regression(self):
        trace = record_trace(get_benchmark("swaptions"), scale="test")
        registry = MetricsRegistry()
        result = simulate_trace(
            trace, SimConfig(detection=True), registry=registry
        )
        stats = result.check_stats
        # Race-unit class breakdown mirrors the struct exactly.
        for cls, count in stats.by_class.items():
            assert registry.value(f"sim.race_unit.by_class.{cls}") == count
        assert registry.value("sim.race_unit.total") == stats.total
        # Hierarchy counters mirror the struct exactly.
        hstats = result.hierarchy.stats
        assert registry.value("sim.hierarchy.accesses") == hstats.accesses
        assert registry.value("sim.hierarchy.l1_hits") == hstats.l1_hits
        assert registry.value("sim.hierarchy.memory_fetches") == \
            hstats.memory_fetches
        assert registry.value("sim.cycles") == result.cycles
        assert registry.value("sim.metadata.expansions") == result.expansions
        # The SimResult carries the same snapshot.
        assert result.metrics == registry.snapshot()

    def test_warmup_pass_not_double_counted(self):
        trace = record_trace(get_benchmark("swaptions"), scale="test")
        registry = MetricsRegistry()
        result = simulate_trace(
            trace, SimConfig(detection=True), registry=registry
        )
        # check_stats is the post-warmup struct; a double-counted registry
        # would hold roughly twice these values.
        assert registry.value("sim.race_unit.total") == result.check_stats.total


class TestCliTelemetry:
    def test_check_json(self, capsys):
        assert cli_main(["check", "torn", "--seeds", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stopped"] == 2
        assert len(payload["runs"]) == 2
        assert payload["metrics"]["run.races"] >= 1

    def test_check_telemetry_jsonl(self, tmp_path, capsys):
        out = str(tmp_path / "tel.jsonl")
        assert cli_main(["check", "racy", "--seeds", "2",
                         "--telemetry", out]) == 0
        records = read_jsonl(out)
        spans = [r for r in records if r["type"] == "span"]
        metrics = [r for r in records if r["type"] == "metrics"]
        assert len(spans) >= 3  # 2 seed spans + the check span
        assert len(metrics) == 1
        assert metrics[0]["metrics"]["detector.races_raised"] >= 1
        for record in spans:
            assert record["duration_s"] >= 0

    def test_bench_json(self, capsys):
        assert cli_main(["bench", "swaptions", "--scale", "test",
                         "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benchmark"] == "swaptions"
        assert payload["slowdown_full"] > 1.0
        assert payload["metrics"]["detector.reads"] > 0

    def test_profile_command(self, capsys):
        assert cli_main(["profile", "swaptions", "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "mem.reads.shared" in out
        assert "detector.epoch_table.touched_bytes" in out
        assert "sync.commits" in out

    def test_profile_json(self, capsys):
        assert cli_main(["profile", "swaptions", "--scale", "test",
                         "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["race"] is None
        assert payload["metrics"]["sync.commits"] > 0

    def test_simulate_telemetry(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.jsonl")
        tel_file = str(tmp_path / "sim.jsonl")
        assert cli_main(["trace", "swaptions", trace_file]) == 0
        assert cli_main(["simulate", trace_file, "--telemetry",
                         tel_file]) == 0
        records = read_jsonl(tel_file)
        names = [r["name"] for r in records if r["type"] == "span"]
        assert {"simulate.load", "simulate.baseline",
                "simulate.detection"} <= set(names)
        final = records[-1]
        assert final["type"] == "metrics"
        assert final["metrics"]["sim.slowdown"] > 0
