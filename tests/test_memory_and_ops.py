"""Unit tests for shared memory and the operation vocabulary."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.memory import SharedMemory
from repro.runtime.ops import (
    Acquire,
    AtomicRMW,
    BarrierWait,
    Compute,
    CondBroadcast,
    CondSignal,
    CondWait,
    Join,
    Output,
    Read,
    Release,
    SemPost,
    SemWait,
    Spawn,
    Write,
)
from repro.runtime.sync import Barrier, Condition, Lock, Semaphore


class TestSharedMemory:
    def test_default_zero(self):
        mem = SharedMemory()
        assert mem.load_byte(123) == 0
        assert mem.load_int(123, 8) == 0

    def test_byte_roundtrip(self):
        mem = SharedMemory()
        mem.store_byte(5, 0x1FF)  # masked to 0xFF
        assert mem.load_byte(5) == 0xFF

    def test_little_endian_layout(self):
        mem = SharedMemory()
        mem.store_int(0, 4, 0x0A0B0C0D)
        assert [mem.load_byte(i) for i in range(4)] == [0x0D, 0x0C, 0x0B, 0x0A]

    def test_negative_values_wrap(self):
        mem = SharedMemory()
        mem.store_int(0, 4, -1)
        assert mem.load_int(0, 4) == 0xFFFFFFFF

    def test_partial_overwrite(self):
        mem = SharedMemory()
        mem.store_int(0, 8, 0xAAAAAAAAAAAAAAAA)
        mem.store_int(2, 2, 0xBBBB)
        assert mem.load_int(0, 8) == 0xAAAAAAAABBBBAAAA

    @given(
        address=st.integers(min_value=0, max_value=1000),
        size=st.sampled_from([1, 2, 4, 8]),
        value=st.integers(min_value=0, max_value=2**64 - 1),
    )
    def test_roundtrip_property(self, address, size, value):
        mem = SharedMemory()
        masked = value & ((1 << (8 * size)) - 1)
        mem.store_int(address, size, value)
        assert mem.load_int(address, size) == masked

    def test_alloc_alignment(self):
        mem = SharedMemory()
        a = mem.alloc(3, align=64)
        b = mem.alloc(3, align=64)
        assert a % 64 == 0 and b % 64 == 0
        assert b >= a + 3

    def test_alloc_validation(self):
        mem = SharedMemory()
        with pytest.raises(ValueError):
            mem.alloc(0)
        with pytest.raises(ValueError):
            mem.alloc(8, align=3)

    def test_snapshot_and_footprint(self):
        mem = SharedMemory()
        mem.store_int(0, 4, 0x01020304)
        snap = mem.snapshot()
        assert len(snap) == 4
        assert mem.footprint == 4
        mem.store_byte(0, 9)
        assert snap[0] == 0x04  # snapshot is a copy

    def test_access_counters(self):
        mem = SharedMemory()
        mem.store_int(0, 8, 1)
        mem.load_int(0, 8)
        mem.load_byte(0)
        assert mem.stores == 1
        assert mem.loads == 2

    def test_counters_are_per_operation_not_per_byte(self):
        """The documented accounting: one call = one load/store, no
        matter how many bytes the operation touches.  A 4-byte
        ``load_int`` is one load; reading the same word with four
        ``load_byte`` calls is four."""
        mem = SharedMemory()
        mem.store_int(0, 4, 0x01020304)
        assert mem.stores == 1  # not 4
        mem.load_int(0, 4)
        assert mem.loads == 1  # not 4
        for i in range(4):
            mem.load_byte(i)
        assert mem.loads == 5  # 1 wide + 4 byte operations
        for i in range(4):
            mem.store_byte(i, 0)
        assert mem.stores == 5

    def test_counter_width_independence(self):
        """Operation counts must not depend on access width at all."""
        for size in (1, 2, 4, 8):
            mem = SharedMemory()
            mem.store_int(0, size, 1)
            mem.load_int(0, size)
            assert (mem.stores, mem.loads) == (1, 1), size


class TestOpProperties:
    def test_costs(self):
        assert Read(0, 4).cost == 1
        assert Write(0, 4, 1).cost == 1
        assert Compute(17).cost == 17
        assert AtomicRMW(0, 4, lambda v: v).cost == 2
        assert Read(0, 4, weight=5).cost == 5

    def test_sync_classification(self):
        lock, barrier = Lock(), Barrier(2)
        cond, sem = Condition(), Semaphore()
        sync_ops = [
            Acquire(lock), Release(lock), BarrierWait(barrier),
            CondWait(cond, lock), CondSignal(cond), CondBroadcast(cond),
            SemWait(sem), SemPost(sem), Spawn(lambda ctx: None), Join(1),
        ]
        for op in sync_ops:
            assert op.is_sync, op
        for op in [Read(0), Write(0), Compute(), Output(),
                   AtomicRMW(0, 4, lambda v: v)]:
            assert not op.is_sync, op

    def test_ops_are_frozen(self):
        op = Read(0, 4)
        with pytest.raises(Exception):
            op.address = 5

    def test_sync_objects_have_stable_names(self):
        assert Lock("mine").name == "mine"
        assert Barrier(2, "b").name == "b"
        assert Lock().name != Lock().name  # generated names are unique

    def test_barrier_validation(self):
        with pytest.raises(ValueError):
            Barrier(0)

    def test_semaphore_validation(self):
        with pytest.raises(ValueError):
            Semaphore(-1)
