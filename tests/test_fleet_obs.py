"""Tests for the fleet-observability layer (PR 9).

Covers labeled metrics (canonical names, escaping, merge determinism,
kind enforcement), the Prometheus exposition of labeled families with
HELP lines, the ring-buffer time-series store and its collector thread,
the SLO burn-rate engine (synthetic burns, online/offline verdict
identity, config loading), the self-contained HTML dashboard, and the
serve daemon's /timeseries, /alerts and /dashboard endpoints plus
request-id sanitization — including the determinism pin: a run's
verdict and counters are byte-identical with the collector on or off.
"""

import json
import threading

import pytest

from repro.experiments.traces import record_trace
from repro.obs import (
    Collector,
    MetricsRegistry,
    Objective,
    TimeSeriesStore,
    default_slos,
    evaluate_slos,
    labeled_name,
    load_slo_config,
    render_dashboard,
    render_prom,
    render_slo_text,
    split_labels,
)
from repro.obs.timeseries import TIMESERIES_FORMAT_VERSION
from repro.service import RaceCheckService, ServeDaemon
from repro.workloads.suite import get_benchmark

from tests.test_service import _request, _wait_for  # noqa: F401


@pytest.fixture(scope="module")
def clean_bytes(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "clean.trace"
    trace = record_trace(get_benchmark("dedup"), scale="test", seed=1,
                         racy=False)
    trace.save(path)
    return path.read_bytes()


# -- labeled names -----------------------------------------------------------


class TestLabeledNames:
    def test_canonical_form_sorts_keys(self):
        name = labeled_name("serve.accepted", {"b": "2", "a": "1"})
        assert name == 'serve.accepted{a="1",b="2"}'

    def test_round_trip_with_escaping(self):
        labels = {"tenant": 't"1\\x\nend', "zone": "us"}
        name = labeled_name("serve.latency", labels)
        base, parsed = split_labels(name)
        assert base == "serve.latency"
        assert dict(parsed) == labels

    def test_no_labels_passthrough(self):
        assert labeled_name("serve.accepted", None) == "serve.accepted"
        assert labeled_name("serve.accepted", {}) == "serve.accepted"
        assert split_labels("serve.accepted") == ("serve.accepted", ())

    def test_bad_label_key_rejected(self):
        with pytest.raises(ValueError):
            labeled_name("x", {"bad key": "v"})
        with pytest.raises(ValueError):
            labeled_name("x", {"9lives": "v"})

    def test_brace_in_base_name_rejected(self):
        with pytest.raises(ValueError):
            labeled_name('x{a="1"}', {"b": "2"})


class TestRegistryLabels:
    def test_labeled_and_flat_coexist(self):
        r = MetricsRegistry()
        r.inc("serve.accepted", 2)
        r.inc("serve.accepted", 1, labels={"tenant": "t1"})
        r.inc("serve.accepted", 1, labels={"tenant": "t2"})
        snap = r.snapshot()
        assert snap["serve.accepted"] == 2
        assert snap['serve.accepted{tenant="t1"}'] == 1
        assert snap['serve.accepted{tenant="t2"}'] == 1

    def test_label_order_is_canonical(self):
        r = MetricsRegistry()
        c1 = r.counter("hits", labels={"a": "1", "b": "2"})
        c2 = r.counter("hits", labels={"b": "2", "a": "1"})
        assert c1 is c2

    def test_kind_conflict_across_label_sets(self):
        r = MetricsRegistry()
        r.counter("x", labels={"t": "1"})
        with pytest.raises(TypeError):
            r.gauge("x", labels={"t": "2"})
        with pytest.raises(TypeError):
            r.histogram("x")

    def test_merge_is_deterministic(self):
        def fill(r, amounts):
            for tenant, n in amounts:
                r.inc("serve.accepted", n, labels={"tenant": tenant})
                r.observe("serve.latency", n / 10,
                          labels={"tenant": tenant})

        serial = MetricsRegistry()
        fill(serial, [("t1", 1), ("t2", 2), ("t1", 3)])

        a, b = MetricsRegistry(), MetricsRegistry()
        fill(a, [("t1", 1), ("t2", 2)])
        fill(b, [("t1", 3)])
        merged = MetricsRegistry()
        merged.merge(a)
        merged.merge(b)
        assert merged.to_json() == serial.to_json()

        via_snapshot = MetricsRegistry()
        via_snapshot.merge_snapshot(a.snapshot())
        via_snapshot.merge_snapshot(b.snapshot())
        assert via_snapshot.to_json() == serial.to_json()

    def test_describe_feeds_help_text(self):
        r = MetricsRegistry()
        r.describe("serve.accepted", "Accepted submissions.")
        r.inc("serve.accepted", labels={"tenant": "t1"})
        assert r.help_text("serve.accepted") == "Accepted submissions."


# -- Prometheus exposition ---------------------------------------------------


class TestPromLabels:
    def test_family_grouping_with_help_and_type_once(self):
        r = MetricsRegistry()
        r.describe("serve.accepted", "Accepted submissions.")
        r.inc("serve.accepted", 3)
        r.inc("serve.accepted", 1, labels={"tenant": "t1"})
        r.inc("serve.accepted", 2, labels={"tenant": "t2"})
        text = render_prom(r)
        assert text.count("# HELP serve_accepted ") == 1
        assert text.count("# TYPE serve_accepted counter") == 1
        assert "# HELP serve_accepted Accepted submissions.\n" in text
        assert "\nserve_accepted 3\n" in text or \
            text.startswith("serve_accepted 3\n") or \
            "serve_accepted 3\n" in text
        assert 'serve_accepted{tenant="t1"} 1\n' in text
        assert 'serve_accepted{tenant="t2"} 2\n' in text

    def test_label_value_escaping_per_exposition_spec(self):
        r = MetricsRegistry()
        r.inc("hits", 1, labels={"tenant": 'a"b\\c\nd'})
        text = render_prom(r)
        assert 'hits{tenant="a\\"b\\\\c\\nd"} 1' in text

    def test_labeled_histogram_merges_le_into_label_block(self):
        r = MetricsRegistry()
        h = r.histogram("lat", bounds=[1, 2], labels={"tenant": "t1"})
        for v in (1, 2, 5):
            h.observe(v)
        text = render_prom(r)
        assert 'lat_bucket{tenant="t1",le="1"} 1' in text
        assert 'lat_bucket{tenant="t1",le="2"} 2' in text
        assert 'lat_bucket{tenant="t1",le="+Inf"} 3' in text
        assert 'lat_count{tenant="t1"} 3' in text
        assert 'lat_sum{tenant="t1"} 8' in text

    def test_labeled_gauge_high_water(self):
        r = MetricsRegistry()
        r.set_gauge("depth", 5, labels={"q": "ingest"})
        r.set_gauge("depth", 2, labels={"q": "ingest"})
        text = render_prom(r)
        assert 'depth{q="ingest"} 2' in text
        assert 'depth_high_water{q="ingest"} 5' in text


# -- time series -------------------------------------------------------------


class TestTimeSeriesStore:
    def test_ring_eviction_at_capacity(self):
        store = TimeSeriesStore(capacity=3)
        for i in range(5):
            store.record("x", float(i), float(i * 10))
        assert store.series("x") == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]

    def test_window_and_delta(self):
        store = TimeSeriesStore(capacity=10)
        for i in range(6):
            store.record("c", float(i * 10), float(i * 100))
        assert store.window("c", 20.0, now=50.0) == [
            (30.0, 300.0), (40.0, 400.0), (50.0, 500.0)
        ]
        assert store.delta("c", 20.0, now=50.0) == 200.0
        assert store.delta("c", 5.0, now=50.0) == 0.0  # one sample
        assert store.delta("missing", 20.0, now=50.0) == 0.0

    def test_sample_flattens_histograms(self):
        r = MetricsRegistry()
        r.inc("serve.accepted", 2, labels={"tenant": "t1"})
        h = r.histogram("serve.latency", bounds=[1, 5])
        for v in (0.5, 3, 9):
            h.observe(v)
        store = TimeSeriesStore(capacity=4)
        store.sample(r, t=100.0)
        names = store.names()
        assert 'serve.accepted{tenant="t1"}' in names
        assert store.series("serve.latency.count") == [(100.0, 3)]
        assert store.series("serve.latency.sum") == [(100.0, 12.5)]
        assert store.series("serve.latency.le.1") == [(100.0, 1)]
        assert store.series("serve.latency.le.5") == [(100.0, 2)]
        assert store.series("serve.latency.le.inf") == [(100.0, 3)]

    def test_payload_round_trip(self):
        store = TimeSeriesStore(capacity=4)
        store.record("a", 1.0, 2.0)
        store.record("a", 2.0, 4.0)
        store.record("b", 1.5, -1.0)
        payload = store.to_payload()
        assert payload["version"] == TIMESERIES_FORMAT_VERSION
        clone = TimeSeriesStore.from_payload(
            json.loads(json.dumps(payload))
        )
        assert clone.to_payload() == payload

    def test_unknown_payload_version_rejected(self):
        with pytest.raises(ValueError):
            TimeSeriesStore.from_payload({"version": 99, "series": {}})


class TestCollector:
    def test_immediate_and_final_samples(self):
        r = MetricsRegistry()
        r.inc("c", 1)
        store = TimeSeriesStore(capacity=10)
        clock_value = [100.0]
        collector = Collector(store, r, interval_s=60.0,
                              clock=lambda: clock_value[0])
        collector.start()
        assert store.series("c") == [(100.0, 1)]
        r.inc("c", 4)
        clock_value[0] = 101.0
        collector.stop()
        assert store.series("c") == [(100.0, 1), (101.0, 5)]
        collector.stop()  # idempotent
        assert collector.samples_taken == 2

    def test_periodic_sampling(self):
        r = MetricsRegistry()
        r.inc("c", 1)
        store = TimeSeriesStore(capacity=100)
        collector = Collector(store, r, interval_s=0.02)
        collector.start()
        assert _wait_for(lambda: len(store.series("c")) >= 3, timeout=5.0)
        collector.stop()

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            Collector(TimeSeriesStore(), MetricsRegistry(), interval_s=0)


# -- SLO engine --------------------------------------------------------------


def _availability_store(failed_recent=True):
    """A store whose serve.completed/failed series burn the budget.

    With ``failed_recent`` the failures continue into the short window
    (both windows burn -> firing); without it the bleeding stopped
    (short window clean -> not firing).
    """
    store = TimeSeriesStore(capacity=100)
    for t, done, failed in ((0.0, 100, 0), (50.0, 150, 50),
                            (100.0, 200, 100 if failed_recent else 50)):
        store.record("serve.completed", t, done)
        store.record("serve.failed", t, failed)
    return store


class TestSLOEngine:
    def test_availability_burn_fires_on_both_windows(self):
        report = evaluate_slos(
            _availability_store(failed_recent=True),
            [Objective(name="avail", kind="availability", target=0.99)],
        )
        assert report["firing"] == ["avail"]
        assert report["ok"] is False
        entry = report["objectives"][0]
        assert entry["firing"] is True
        assert any(p["firing"] for p in entry["windows"])
        text = render_slo_text(report)
        assert "FIRING" in text and "avail" in text

    def test_recovered_short_window_resets_alert(self):
        # Failures stopped before the short windows: the long window
        # still burns but the pair needs BOTH, so nothing fires.
        store = TimeSeriesStore(capacity=100)
        for t, done, failed in ((0.0, 0, 0), (10.0, 20, 50),
                                (280.0, 400, 50), (300.0, 450, 50)):
            store.record("serve.completed", t, done)
            store.record("serve.failed", t, failed)
        report = evaluate_slos(
            store,
            [Objective(name="avail", kind="availability", target=0.99,
                       windows=((300.0, 15.0, 2.0),))],
        )
        assert report["firing"] == []
        pair = report["objectives"][0]["windows"][0]
        assert pair["long"]["burning"] is True
        assert pair["short"]["burning"] is False

    def test_empty_store_is_in_slo(self):
        report = evaluate_slos(TimeSeriesStore(), default_slos())
        assert report["ok"] is True
        assert report["firing"] == []

    def test_latency_p99_classifies_by_threshold_bucket(self):
        store = TimeSeriesStore(capacity=100)
        # 100 requests in the window, only 10 within the 5s bound.
        for t, count, le5 in ((0.0, 0, 0), (30.0, 100, 10)):
            store.record("serve.latency.count", t, count)
            store.record("serve.latency.le.5", t, le5)
            store.record("serve.latency.le.inf", t, count)
        report = evaluate_slos(
            store,
            [Objective(name="lat", kind="latency_p99", target=0.95,
                       threshold_s=5.0, windows=((60.0, 30.0, 2.0),))],
        )
        assert report["firing"] == ["lat"]
        assert report["objectives"][0]["p99_s"] == "inf"

    def test_shed_rate(self):
        store = TimeSeriesStore(capacity=100)
        for t, subs, shed in ((0.0, 0, 0), (30.0, 100, 80)):
            store.record("serve.submissions", t, subs)
            store.record("serve.queue_rejected", t, shed)
        report = evaluate_slos(
            store,
            [Objective(name="shed", kind="shed_rate", target=0.5,
                       windows=((60.0, 30.0, 1.0),))],
        )
        assert report["firing"] == ["shed"]

    def test_offline_evaluation_is_identical(self):
        store = _availability_store()
        objectives = default_slos()
        live = evaluate_slos(store, objectives)
        scraped = TimeSeriesStore.from_payload(
            json.loads(json.dumps(store.to_payload()))
        )
        offline = evaluate_slos(scraped, objectives)
        assert offline == live

    def test_config_loading(self):
        objectives = load_slo_config(json.dumps({
            "objectives": [
                {"name": "a", "kind": "availability", "target": 0.999},
                {"name": "l", "kind": "latency_p99", "target": 0.9,
                 "threshold_s": 2.5, "windows": [[120, 30, 3.0]]},
            ]
        }))
        assert [o.name for o in objectives] == ["a", "l"]
        assert objectives[1].windows == ((120.0, 30.0, 3.0),)

    @pytest.mark.parametrize("payload", [
        {},
        {"objectives": []},
        {"objectives": [{"name": "x", "kind": "nope", "target": 0.9}]},
        {"objectives": [{"name": "x", "kind": "availability",
                         "target": 1.5}]},
        {"objectives": [{"name": "x", "kind": "availability",
                         "target": 0.9, "windows": [[10, 60, 2.0]]}]},
        {"objectives": [{"name": "x", "kind": "availability",
                         "target": 0.9, "bogus_field": 1}]},
        {"objectives": [
            {"name": "x", "kind": "availability", "target": 0.9},
            {"name": "x", "kind": "shed_rate", "target": 0.5},
        ]},
    ])
    def test_bad_configs_rejected(self, payload):
        with pytest.raises(ValueError):
            load_slo_config(payload)


# -- dashboard ---------------------------------------------------------------


def _dashboard_inputs():
    r = MetricsRegistry()
    r.inc("serve.submissions", 10)
    r.inc("serve.accepted", 9)
    r.inc("serve.accepted", 5, labels={"tenant": "t1"})
    r.inc("serve.accepted", 4, labels={"tenant": "<evil>"})
    r.observe("serve.latency", 0.5, labels={"tenant": "t1"})
    store = TimeSeriesStore(capacity=10)
    for t in (0.0, 1.0, 2.0):
        store.sample(r, t=t)
        r.inc("serve.accepted", 1)
    status = {"state": "serving", "submissions": {"total": 10}}
    alerts = evaluate_slos(store, default_slos())
    return status, store.to_payload(), alerts, r.snapshot()


class TestDashboard:
    def test_self_contained_html(self):
        status, ts, alerts, snap = _dashboard_inputs()
        html = render_dashboard(status, ts, alerts, snapshot=snap)
        assert html.lstrip().lower().startswith("<!doctype html")
        assert "<svg" in html
        assert "<script" not in html
        assert 'src="http' not in html and "<link" not in html
        assert 'http-equiv="refresh"' in html

    def test_client_strings_escaped(self):
        status, ts, alerts, snap = _dashboard_inputs()
        html = render_dashboard(status, ts, alerts, snapshot=snap)
        assert "<evil>" not in html
        assert "&lt;evil&gt;" in html

    def test_renders_without_snapshot_or_data(self):
        html = render_dashboard(
            {"state": "serving"},
            TimeSeriesStore().to_payload(),
            evaluate_slos(TimeSeriesStore(), default_slos()),
        )
        assert "<svg" in html or "no data" in html.lower()


# -- daemon end to end -------------------------------------------------------


class TestDaemonFleetObservability:
    def test_endpoints_and_sanitization(self, tmp_path, clean_bytes):
        service = RaceCheckService(spool=str(tmp_path / "spool"), workers=1)
        daemon = ServeDaemon(service, sample_interval_s=0.05, retention=50)
        port = daemon.start()
        try:
            status, sub, _ = _request(
                port, "POST", "/submit", body=clean_bytes,
                headers={"X-Tenant": "acme", "X-Request-Id": "bad id!!"},
            )
            assert status == 202
            assert sub["request_id"] != "bad id!!"
            status, sub2, _ = _request(
                port, "POST", "/submit", body=clean_bytes,
                headers={"X-Tenant": "bad tenant\x01",
                         "X-Request-Id": "ok-1"},
            )
            assert status == 202
            assert sub2["request_id"] == "ok-1"

            assert _wait_for(lambda: _request(
                port, "GET", f"/result/{sub['id']}"
            )[1]["state"] in ("done", "failed"))
            # wait for a sample taken *after* the submissions landed —
            # the immediate startup sample alone predates them
            assert _wait_for(
                lambda: "serve.submissions"
                in daemon.timeseries.to_payload()["series"]
            )

            status, ts, _ = _request(port, "GET", "/timeseries")
            assert status == 200
            assert ts["version"] == TIMESERIES_FORMAT_VERSION
            assert "serve.submissions" in ts["series"]
            assert 'serve.accepted{tenant="acme"}' in ts["series"]

            status, alerts, _ = _request(port, "GET", "/alerts")
            assert status == 200
            assert {"objectives", "firing", "ok"} <= set(alerts)

            status, html, headers = _request(port, "GET", "/dashboard")
            assert status == 200
            assert headers["Content-Type"].startswith("text/html")
            assert "<svg" in html and "acme" in html

            status, prom, _ = _request(port, "GET", "/metrics")
            assert 'serve_accepted{tenant="acme"} 1' in prom
            assert 'serve_accepted{tenant="default"} 1' in prom
            assert "serve_request_id_sanitized 1" in prom
            assert "serve_tenant_sanitized 1" in prom

            # Offline re-evaluation of the scraped artifact matches the
            # live endpoint (same engine, now pinned to the data).
            offline = evaluate_slos(
                TimeSeriesStore.from_payload(ts), daemon.slos
            )
            assert offline["firing"] == alerts["firing"]
        finally:
            daemon.stop()

    def test_verdict_identical_with_collector_on_or_off(
        self, tmp_path, clean_bytes
    ):
        def run(collect, spool):
            service = RaceCheckService(spool=str(spool), workers=1)
            daemon = ServeDaemon(service, sample_interval_s=0.01,
                                 retention=50, collect=collect)
            daemon.start()
            try:
                payload = service.submit(clean_bytes, tenant="t1")
                assert service.drain(timeout=30)
                verdict = service.result(payload["id"])["verdict"]
                counters = {
                    name: value
                    for name, value in service.registry.snapshot().items()
                    if name.startswith(("clean.", "serve.verdict"))
                }
                return verdict, counters
            finally:
                daemon.stop()

        on = run(True, tmp_path / "on")
        off = run(False, tmp_path / "off")
        assert on == off

    def test_collector_disabled_serves_empty_timeseries(
        self, tmp_path
    ):
        service = RaceCheckService(spool=str(tmp_path / "spool"), workers=1)
        daemon = ServeDaemon(service, collect=False)
        port = daemon.start()
        try:
            assert daemon.collector is None
            status, ts, _ = _request(port, "GET", "/timeseries")
            assert status == 200
            assert ts["series"] == {}
            status, alerts, _ = _request(port, "GET", "/alerts")
            assert status == 200 and alerts["ok"] is True
            status, html, _ = _request(port, "GET", "/dashboard")
            assert status == 200
        finally:
            daemon.stop()
