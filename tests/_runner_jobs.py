"""Top-level job functions for the exec-runner tests.

Job functions are resolved by dotted path in worker processes, so they
must live in an importable module — not inside a test class.
"""

import json
import os
import time


def double(x):
    return {"x": x, "doubled": 2 * x}


def boom(message="kaboom"):
    raise RuntimeError(message)


def sleeper(seconds, value="done"):
    time.sleep(seconds)
    return value


def clean_workload(seed=0, runs=1, race_probability=0.0):
    """Seeded CLEAN runs that publish ``clean.*`` telemetry.

    Exercises the cross-process pipeline: the CleanMonitor accumulates
    its counters (and feeds the site profiler) into whatever ambient
    telemetry scope the runner installed around this job.
    """
    from repro.clean import run_clean
    from repro.runtime import RandomPolicy
    from repro.workloads import make_random_program

    races = 0
    for i in range(runs):
        program, _ = make_random_program(
            seed + i, race_probability=race_probability
        )
        result = run_clean(program, policy=RandomPolicy(seed + i))
        if result.race is not None:
            races += 1
    return {"seed": seed, "runs": runs, "races": races}


def flaky(counter_file, fail_times=1, value="eventually"):
    """Fail the first ``fail_times`` calls, then succeed.

    Attempts are counted in a file so the count survives process
    boundaries (each pool attempt runs in a fresh worker).
    """
    count = 0
    if os.path.exists(counter_file):
        with open(counter_file) as fh:
            count = json.load(fh)
    count += 1
    with open(counter_file, "w") as fh:
        json.dump(count, fh)
    if count <= fail_times:
        raise RuntimeError(f"flaky failure #{count}")
    return {"value": value, "calls": count}


def hard_exit(code=13, value="unreached"):
    """Kill the worker process outright (no result ever sent)."""
    os._exit(code)


def wedged_sleeper(seconds=30.0, value="unreached"):
    """Go silent (no heartbeats), then sleep: watchdog fodder."""
    from repro.faults import wedge

    wedge()
    time.sleep(seconds)
    return value


def deadlock_job():
    """Run a program that ABBA-deadlocks; DeadlockError escapes as a
    job failure the runner must degrade to a FAILED row."""
    from repro.runtime import (
        Acquire,
        Compute,
        Join,
        Lock,
        Program,
        RoundRobinPolicy,
        Spawn,
    )

    l1, l2 = Lock("a"), Lock("b")

    def t1(ctx):
        yield Acquire(l1)
        yield Compute(5)
        yield Acquire(l2)

    def t2(ctx):
        yield Acquire(l2)
        yield Compute(5)
        yield Acquire(l1)

    def main(ctx):
        a = yield Spawn(t1)
        b = yield Spawn(t2)
        yield Join(a)
        yield Join(b)

    Program(main).run(policy=RoundRobinPolicy())
    return "unreachable"
