"""Top-level job functions for the exec-runner tests.

Job functions are resolved by dotted path in worker processes, so they
must live in an importable module — not inside a test class.
"""

import json
import os
import time


def double(x):
    return {"x": x, "doubled": 2 * x}


def boom(message="kaboom"):
    raise RuntimeError(message)


def sleeper(seconds, value="done"):
    time.sleep(seconds)
    return value


def clean_workload(seed=0, runs=1, race_probability=0.0):
    """Seeded CLEAN runs that publish ``clean.*`` telemetry.

    Exercises the cross-process pipeline: the CleanMonitor accumulates
    its counters (and feeds the site profiler) into whatever ambient
    telemetry scope the runner installed around this job.
    """
    from repro.clean import run_clean
    from repro.runtime import RandomPolicy
    from repro.workloads import make_random_program

    races = 0
    for i in range(runs):
        program, _ = make_random_program(
            seed + i, race_probability=race_probability
        )
        result = run_clean(program, policy=RandomPolicy(seed + i))
        if result.race is not None:
            races += 1
    return {"seed": seed, "runs": runs, "races": races}


def flaky(counter_file, fail_times=1, value="eventually"):
    """Fail the first ``fail_times`` calls, then succeed.

    Attempts are counted in a file so the count survives process
    boundaries (each pool attempt runs in a fresh worker).
    """
    count = 0
    if os.path.exists(counter_file):
        with open(counter_file) as fh:
            count = json.load(fh)
    count += 1
    with open(counter_file, "w") as fh:
        json.dump(count, fh)
    if count <= fail_times:
        raise RuntimeError(f"flaky failure #{count}")
    return {"value": value, "calls": count}
