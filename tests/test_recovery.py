"""Race-exception recovery: rollback-and-retry, quarantine, buffering.

The recovery subsystem (:mod:`repro.runtime.recovery`) buffers each
SFR's writes and, when a race exception fires, rolls the faulting
thread back to its SFR entry and retries under a perturbed schedule,
or parks the thread and finishes the rest of the program.  These tests
pin the core guarantees:

* buffering is invisible: race-free runs are bit-identical with
  recovery on or off, and perform zero recovery actions;
* racy runs under rollback-retry complete (no crash, no hang) and are
  deterministic run to run;
* quarantine parks exactly the faulting thread, force-releases its
  locks, and lets the rest of the program finish — even when survivors
  then deadlock on the parked thread (graceful stop, not a hang).
"""

import pytest

from repro.clean import run_clean
from repro.diagnostics import render_recovery
from repro.runtime import (
    Acquire,
    Compute,
    Join,
    Lock,
    Output,
    Program,
    Quarantined,
    Read,
    Release,
    RecoveryPolicy,
    Spawn,
    Write,
)
from repro.workloads import build_program
from repro.workloads.suite import RACY_BENCHMARKS, get_benchmark


def racy_increment_program():
    """Two threads increment a shared counter with no synchronization."""

    def worker(ctx, addr):
        value = yield Read(addr, 8)
        yield Compute(3)
        yield Write(addr, 8, value + 1)

    def main(ctx):
        addr = ctx.alloc(8)
        yield Write(addr, 8, 0)
        a = yield Spawn(worker, (addr,))
        b = yield Spawn(worker, (addr,))
        yield Join(a)
        yield Join(b)
        final = yield Read(addr, 8)
        yield Output(("final", final))

    return Program(main)


def locked_increment_program():
    """Race-free twin of :func:`racy_increment_program`."""
    lock = Lock("counter")

    def worker(ctx, addr):
        yield Acquire(lock)
        value = yield Read(addr, 8)
        yield Compute(3)
        yield Write(addr, 8, value + 1)
        yield Release(lock)

    def main(ctx):
        addr = ctx.alloc(8)
        yield Write(addr, 8, 0)
        a = yield Spawn(worker, (addr,))
        b = yield Spawn(worker, (addr,))
        yield Join(a)
        yield Join(b)
        final = yield Read(addr, 8)
        yield Output(("final", final))

    return Program(main)


class TestPolicy:
    def test_coerce_from_string_and_none(self):
        assert RecoveryPolicy.coerce(None) is None
        policy = RecoveryPolicy.coerce("quarantine")
        assert policy.mode == "quarantine"
        same = RecoveryPolicy.coerce(policy)
        assert same is policy

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(mode="wish-harder")
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=-1)

    def test_recovery_requires_fused_dispatch(self):
        with pytest.raises(ValueError, match="fused"):
            racy_increment_program().run(fused=False, recovery="abort")


class TestRollbackRetry:
    def test_racy_program_completes(self):
        result = run_clean(racy_increment_program(), recovery="rollback-retry")
        assert result.race is None
        report = result.recovery
        assert report is not None
        assert report.races >= 1
        assert report.rollbacks >= 1
        assert not report.quarantined
        # Both increments survived: recovery serialized the two SFRs.
        assert result.outputs[0][-1] == ("final", 2)

    def test_rollback_retry_is_deterministic(self):
        r1 = run_clean(racy_increment_program(), recovery="rollback-retry")
        r2 = run_clean(racy_increment_program(), recovery="rollback-retry")
        assert r1.fingerprint() == r2.fingerprint()
        assert r1.recovery.to_payload() == r2.recovery.to_payload()

    def test_race_free_run_bit_identical_with_recovery(self):
        base = run_clean(locked_increment_program())
        recovered = run_clean(locked_increment_program(), recovery="rollback-retry")
        assert base.fingerprint() == recovered.fingerprint()
        assert base.race is None and recovered.race is None
        report = recovered.recovery
        assert report.clean
        assert report.rollbacks == 0 and not report.events

    def test_retry_exhaustion_degrades_to_quarantine(self):
        policy = RecoveryPolicy(mode="rollback-retry", max_retries=0)
        result = run_clean(racy_increment_program(), recovery=policy)
        assert result.race is None
        report = result.recovery
        assert report.quarantined
        assert any(e.action == "quarantined" for e in report.events)


class TestQuarantine:
    def test_faulting_thread_parked_rest_finishes(self):
        result = run_clean(racy_increment_program(), recovery="quarantine")
        assert result.race is None
        report = result.recovery
        assert len(report.quarantined) == 1
        tid = report.quarantined[0]
        sentinel = result.thread_results[tid]
        assert isinstance(sentinel, Quarantined)
        assert sentinel.tid == tid
        # The surviving increment still landed.
        assert result.outputs[0][-1] == ("final", 1)

    def test_quarantine_force_releases_held_locks(self):
        lock = Lock("guard")

        def racer(ctx, addr):
            yield Acquire(lock)
            value = yield Read(addr, 8)  # races against main's write
            yield Write(addr, 8, value + 1)
            yield Release(lock)

        def waiter(ctx, addr):
            yield Compute(50)
            yield Acquire(lock)  # must not hang on the quarantined racer
            yield Release(lock)
            yield Output("lock-acquired")

        def main(ctx):
            addr = ctx.alloc(8)
            a = yield Spawn(racer, (addr,))
            yield Compute(1)
            yield Write(addr, 8, 7)  # conflicts with racer's open SFR
            b = yield Spawn(waiter, (addr,))
            yield Join(a)
            yield Join(b)

        result = run_clean(Program(main), recovery="quarantine")
        assert result.race is None
        report = result.recovery
        if report.quarantined:  # interleaving-dependent which side faults
            assert "lock-acquired" in [
                o for outs in result.outputs.values() for o in outs
            ]

    def test_post_quarantine_deadlock_is_graceful(self):
        lock = Lock("gate")

        def holder(ctx, addr):
            yield Acquire(lock)
            value = yield Read(addr, 8)
            yield Write(addr, 8, value + 1)
            # Never releases: if quarantined mid-SFR the lock is force
            # released; if it survives, it parks on a second acquire.
            yield Acquire(lock)

        def main(ctx):
            addr = ctx.alloc(8)
            a = yield Spawn(holder, (addr,))
            yield Write(addr, 8, 5)
            yield Join(a)

        result = run_clean(Program(main), recovery="quarantine")
        # Either way the run returns instead of raising or hanging.
        assert result.recovery is not None


class TestAbort:
    def test_abort_mode_records_race_and_stops(self):
        result = run_clean(racy_increment_program(), recovery="abort")
        report = result.recovery
        assert report.races == 1
        assert report.events[0].action == "aborted"


class TestDiagnostics:
    def test_render_recovery_mentions_actions(self):
        result = run_clean(racy_increment_program(), recovery="rollback-retry")
        text = render_recovery(result.recovery)
        assert "race(s)" in text and "retried" in text

    def test_render_recovery_clean_run(self):
        result = run_clean(locked_increment_program(), recovery="rollback-retry")
        assert "no recovery actions" in render_recovery(result.recovery)


class TestTelemetry:
    def test_recovery_counters_published(self):
        from repro.obs import MetricsRegistry
        from repro.obs.context import telemetry_scope

        registry = MetricsRegistry()
        with telemetry_scope(registry=registry):
            run_clean(racy_increment_program(), recovery="rollback-retry")
        snapshot = registry.snapshot()
        assert snapshot.get("clean.recovery.races", 0) >= 1
        assert snapshot.get("clean.recovery.rollbacks", 0) >= 1


class TestBenchmarkProperties:
    """The acceptance property over the real workload models."""

    RACY = ["barnes", "dedup", "water_nsquared"]
    CLEAN = ["lu_ncb", "ocean_cp", "volrend"]

    @pytest.mark.parametrize("name", RACY)
    def test_racy_variants_survive_rollback_retry(self, name):
        assert name in RACY_BENCHMARKS
        program = build_program(
            get_benchmark(name), scale="test", racy=True, seed=0
        )
        policy = RecoveryPolicy(mode="rollback-retry", max_retries=4)
        result = run_clean(program, recovery=policy)
        # Completed: every race either retried away or converged to
        # quarantine within the retry budget — never a crash or hang.
        assert result.race is None
        report = result.recovery
        for event in report.events:
            assert event.retry <= policy.max_retries

    @pytest.mark.parametrize("name", CLEAN)
    def test_race_free_variants_unperturbed(self, name):
        program = build_program(
            get_benchmark(name), scale="test", racy=False, seed=0
        )
        base = run_clean(program)
        program2 = build_program(
            get_benchmark(name), scale="test", racy=False, seed=0
        )
        recovered = run_clean(program2, recovery="rollback-retry")
        assert base.fingerprint() == recovered.fingerprint()
        assert (base.race is None) == (recovered.race is None)
        assert recovered.recovery.rollbacks == 0

    def test_racy_suite_deterministic_under_recovery(self):
        fingerprints = []
        for _ in range(2):
            program = build_program(
                get_benchmark("barnes"), scale="test", racy=True, seed=1
            )
            result = run_clean(program, recovery="rollback-retry")
            fingerprints.append(result.fingerprint())
        assert fingerprints[0] == fingerprints[1]
