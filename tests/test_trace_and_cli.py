"""Tests for trace persistence and the command-line interface."""

import json

import pytest

from repro.__main__ import main as cli_main
from repro.experiments.traces import record_trace
from repro.hardware import SimConfig, simulate_trace
from repro.runtime.trace import READ, SYNC, WRITE, Trace, TraceEvent
from repro.workloads import get_benchmark


class TestTracePersistence:
    def small_trace(self):
        return Trace(
            per_thread={
                1: [
                    TraceEvent(WRITE, 0x1000, 8, gap=3),
                    TraceEvent(SYNC, gap=1, sync_name="Release"),
                    TraceEvent(READ, 0x1000, 4, private=True, gap=0),
                ],
                2: [TraceEvent(READ, 0x2000, 1, gap=7)],
            }
        )

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        original = self.small_trace()
        original.save(path)
        loaded = Trace.load(path)
        assert loaded.per_thread == original.per_thread

    def test_format_is_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self.small_trace().save(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["tid"] == 1
        assert len(record["events"]) == 3

    def test_simulation_identical_after_roundtrip(self, tmp_path):
        trace = record_trace(get_benchmark("fft"), scale="test")
        path = tmp_path / "fft.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        a = simulate_trace(trace, SimConfig(detection=True))
        b = simulate_trace(loaded, SimConfig(detection=True))
        assert a.cycles == b.cycles

    def test_empty_lines_ignored(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self.small_trace().save(path)
        path.write_text(path.read_text() + "\n\n")
        assert Trace.load(path).total_events == 4


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "lu_cb" in out and "canneal" in out

    def test_bench(self, capsys):
        assert cli_main(["bench", "swaptions", "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "full CLEAN slowdown" in out

    def test_bench_racy(self, capsys):
        assert cli_main(["bench", "canneal", "--scale", "test", "--racy"]) == 0
        out = capsys.readouterr().out
        assert "race =" in out

    def test_trace_and_simulate(self, tmp_path, capsys):
        out_file = str(tmp_path / "trace.jsonl")
        assert cli_main(["trace", "swaptions", out_file]) == 0
        assert cli_main(["simulate", out_file]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out

    def test_simulate_precise_unit(self, tmp_path, capsys):
        out_file = str(tmp_path / "trace.jsonl")
        cli_main(["trace", "swaptions", out_file])
        assert cli_main(["simulate", out_file, "--unit", "precise"]) == 0

    def test_check_torn(self, capsys):
        assert cli_main(["check", "torn", "--seeds", "3"]) == 0
        out = capsys.readouterr().out
        assert "stopped 3/3" in out

    def test_unknown_experiment(self, capsys):
        assert cli_main(["experiment", "fig99"]) == 2

    def test_experiment_fig7(self, capsys):
        assert cli_main(["experiment", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "lu_cb" in out
