"""Unit tests for the cooperative runtime scheduler."""

import pytest

from repro.core.exceptions import DeadlockError
from repro.runtime import (
    Acquire,
    AtomicRMW,
    Barrier,
    BarrierWait,
    Compute,
    CondBroadcast,
    Condition,
    CondSignal,
    CondWait,
    Join,
    Lock,
    Output,
    Program,
    RandomPolicy,
    Read,
    Release,
    RoundRobinPolicy,
    ScriptedPolicy,
    Semaphore,
    SemPost,
    SemWait,
    Spawn,
    Write,
)


class TestBasics:
    def test_single_thread_read_write(self):
        def main(ctx):
            addr = ctx.alloc(8)
            yield Write(addr, 8, 0xDEADBEEF)
            value = yield Read(addr, 8)
            return value

        result = Program(main).run()
        assert result.thread_results[0] == 0xDEADBEEF

    def test_alloc_is_deterministic(self):
        def main(ctx):
            a = ctx.alloc(16)
            b = ctx.alloc(16)
            yield Output((a, b))

        r1 = Program(main).run()
        r2 = Program(main).run()
        assert r1.outputs[0] == r2.outputs[0]
        a, b = r1.outputs[0][0]
        assert b >= a + 16

    def test_little_endian_bytes(self):
        def main(ctx):
            addr = ctx.alloc(4)
            yield Write(addr, 4, 0x0A0B0C0D)
            low = yield Read(addr, 1)
            high = yield Read(addr + 3, 1)
            return (low, high)

        result = Program(main).run()
        assert result.thread_results[0] == (0x0D, 0x0A)

    def test_outputs_collected(self):
        def main(ctx):
            yield Output("a")
            yield Output("b")

        assert Program(main).run().outputs[0] == ["a", "b"]

    def test_non_op_yield_rejected(self):
        def main(ctx):
            yield 42

        with pytest.raises(TypeError):
            Program(main).run()

    def test_non_generator_thread_rejected(self):
        def main(ctx):
            return 1

        with pytest.raises(TypeError):
            Program(main).run()

    def test_step_budget(self):
        def main(ctx):
            while True:
                yield Compute(1)

        with pytest.raises(RuntimeError, match="step budget"):
            Program(main).run(max_steps=100)

    def test_atomic_rmw_returns_old(self):
        def main(ctx):
            addr = ctx.alloc(4)
            yield Write(addr, 4, 10)
            old = yield AtomicRMW(addr, 4, lambda v: v + 5)
            new = yield Read(addr, 4)
            return (old, new)

        assert Program(main).run().thread_results[0] == (10, 15)


class TestSpawnJoin:
    def test_join_returns_child_result(self):
        def child(ctx, x):
            yield Compute(1)
            return x * 2

        def main(ctx):
            kid = yield Spawn(child, (21,))
            return (yield Join(kid))

        assert Program(main).run().thread_results[0] == 42

    def test_tids_sequential(self):
        def child(ctx):
            yield Compute(1)

        def main(ctx):
            a = yield Spawn(child)
            b = yield Spawn(child)
            yield Join(a)
            yield Join(b)
            return (a, b)

        assert Program(main).run().thread_results[0] == (1, 2)

    def test_tid_reuse_after_join(self):
        def child(ctx):
            yield Compute(1)

        def main(ctx):
            a = yield Spawn(child)
            yield Join(a)
            b = yield Spawn(child)
            yield Join(b)
            return (a, b)

        a, b = Program(main).run().thread_results[0]
        assert a == b == 1

    def test_nested_spawn(self):
        def grandchild(ctx):
            yield Compute(1)
            return "gc"

        def child(ctx):
            kid = yield Spawn(grandchild)
            return (yield Join(kid))

        def main(ctx):
            kid = yield Spawn(child)
            return (yield Join(kid))

        assert Program(main).run().thread_results[0] == "gc"

    def test_thread_limit(self):
        def child(ctx):
            yield BarrierWait(Barrier(2))  # blocks forever

        def main(ctx):
            yield Spawn(child)
            yield Spawn(child)
            yield Spawn(child)

        with pytest.raises(RuntimeError, match="live threads"):
            Program(main).run(max_threads=3)


class TestLocks:
    def test_mutual_exclusion(self):
        lock = Lock("m")
        trace = []

        def worker(ctx, name):
            yield Acquire(lock)
            trace.append(("enter", name))
            yield Compute(3)
            trace.append(("exit", name))
            yield Release(lock)

        def main(ctx):
            a = yield Spawn(worker, ("a",))
            b = yield Spawn(worker, ("b",))
            yield Join(a)
            yield Join(b)

        Program(main).run(policy=RandomPolicy(3))
        # Critical sections never interleave.
        for i in range(0, len(trace), 2):
            assert trace[i][0] == "enter"
            assert trace[i + 1][0] == "exit"
            assert trace[i][1] == trace[i + 1][1]

    def test_release_unheld_lock_is_error(self):
        lock = Lock()

        def main(ctx):
            yield Release(lock)

        with pytest.raises(RuntimeError, match="released"):
            Program(main).run()

    def test_self_deadlock_detected(self):
        lock = Lock()

        def main(ctx):
            yield Acquire(lock)
            yield Acquire(lock)

        with pytest.raises(DeadlockError):
            Program(main).run()

    def test_abba_deadlock_detected(self):
        l1, l2 = Lock("a"), Lock("b")

        def t1(ctx):
            yield Acquire(l1)
            yield Compute(5)
            yield Acquire(l2)

        def t2(ctx):
            yield Acquire(l2)
            yield Compute(5)
            yield Acquire(l1)

        def main(ctx):
            a = yield Spawn(t1)
            b = yield Spawn(t2)
            yield Join(a)
            yield Join(b)

        # With round-robin both threads grab their first lock, then hang.
        with pytest.raises(DeadlockError):
            Program(main).run(policy=RoundRobinPolicy())


class TestBarrier:
    def test_barrier_rendezvous(self):
        barrier = Barrier(3)
        order = []

        def worker(ctx, name, work):
            yield Compute(work)
            order.append(("before", name))
            yield BarrierWait(barrier)
            order.append(("after", name))

        def main(ctx):
            kids = []
            for i, work in enumerate([1, 5, 9]):
                kids.append((yield Spawn(worker, (i, work))))
            for k in kids:
                yield Join(k)

        Program(main).run(policy=RandomPolicy(7))
        befores = [i for i, e in enumerate(order) if e[0] == "before"]
        afters = [i for i, e in enumerate(order) if e[0] == "after"]
        assert max(befores) < min(afters)

    def test_barrier_reusable_across_generations(self):
        barrier = Barrier(2)
        hits = []

        def worker(ctx, name):
            for phase in range(3):
                yield BarrierWait(barrier)
                hits.append((phase, name))

        def main(ctx):
            a = yield Spawn(worker, ("a",))
            b = yield Spawn(worker, ("b",))
            yield Join(a)
            yield Join(b)

        Program(main).run(policy=RandomPolicy(11))
        assert barrier.generation == 3
        assert len(hits) == 6

    def test_single_party_barrier_never_blocks(self):
        barrier = Barrier(1)

        def main(ctx):
            yield BarrierWait(barrier)
            yield BarrierWait(barrier)
            return "done"

        assert Program(main).run().thread_results[0] == "done"


class TestConditionVariables:
    def test_producer_consumer_handshake(self):
        lock = Lock()
        cond = Condition()

        def consumer(ctx, flag_addr):
            yield Acquire(lock)
            while (yield Read(flag_addr, 1)) == 0:
                yield CondWait(cond, lock)
            value = yield Read(flag_addr + 1, 1)
            yield Release(lock)
            return value

        def main(ctx):
            flag = ctx.alloc(2)
            kid = yield Spawn(consumer, (flag,))
            yield Compute(5)
            yield Acquire(lock)
            yield Write(flag + 1, 1, 99)
            yield Write(flag, 1, 1)
            yield CondSignal(cond)
            yield Release(lock)
            return (yield Join(kid))

        for seed in range(6):
            result = Program(main).run(policy=RandomPolicy(seed))
            assert result.thread_results[0] == 99

    def test_broadcast_wakes_all(self):
        lock = Lock()
        cond = Condition()

        def waiter(ctx, flag):
            yield Acquire(lock)
            while (yield Read(flag, 1)) == 0:
                yield CondWait(cond, lock)
            yield Release(lock)
            return "woke"

        def main(ctx):
            flag = ctx.alloc(1)
            kids = []
            for _ in range(3):
                kids.append((yield Spawn(waiter, (flag,))))
            yield Compute(20)
            yield Acquire(lock)
            yield Write(flag, 1, 1)
            yield CondBroadcast(cond)
            yield Release(lock)
            results = []
            for k in kids:
                results.append((yield Join(k)))
            return results

        assert Program(main).run(policy=RandomPolicy(2)).thread_results[0] == [
            "woke",
            "woke",
            "woke",
        ]

    def test_lost_signal_without_predicate_deadlocks(self):
        lock = Lock()
        cond = Condition()

        def waiter(ctx):
            yield Acquire(lock)
            yield CondWait(cond, lock)  # no predicate: signal already gone
            yield Release(lock)

        def main(ctx):
            yield CondSignal(cond)  # fires before the waiter waits
            kid = yield Spawn(waiter)
            yield Join(kid)

        with pytest.raises(DeadlockError):
            Program(main).run(policy=ScriptedPolicy([0, 0, 0, 1, 1, 1]))


class TestSemaphores:
    def test_bounded_handoff(self):
        sem = Semaphore(0)

        def consumer(ctx, addr):
            yield SemWait(sem)
            return (yield Read(addr, 4))

        def main(ctx):
            addr = ctx.alloc(4)
            kid = yield Spawn(consumer, (addr,))
            yield Write(addr, 4, 1234)
            yield SemPost(sem)
            return (yield Join(kid))

        for seed in range(5):
            assert Program(main).run(policy=RandomPolicy(seed)).thread_results[0] == 1234

    def test_initial_value_consumed(self):
        sem = Semaphore(2)

        def main(ctx):
            yield SemWait(sem)
            yield SemWait(sem)
            return sem.value

        assert Program(main).run().thread_results[0] == 0


class TestDeterminismOfLog:
    def test_sync_log_records_commits(self):
        lock = Lock("m")

        def main(ctx):
            yield Acquire(lock)
            yield Release(lock)

        log = Program(main).run().sync_log
        assert [c.kind for c in log] == ["Acquire", "Release"]
        assert all(c.tid == 0 for c in log)

    def test_fingerprint_equal_for_identical_runs(self):
        def main(ctx):
            addr = ctx.alloc(4)
            yield Write(addr, 4, 5)
            yield Output("x")

        f1 = Program(main).run().fingerprint()
        f2 = Program(main).run().fingerprint()
        assert f1 == f2

    def test_det_counters_accumulate_costs(self):
        def main(ctx):
            yield Compute(10)
            yield Compute(5)

        result = Program(main).run()
        assert result.det_counters[0] == 15


class TestDeadlockCoverage:
    """DeadlockError fires whenever *every* live thread is blocked,
    whatever primitive mix it is blocked on — the scheduler must stop
    with a structured error, never spin or hang."""

    def test_condvar_never_signaled(self):
        lock = Lock("m")
        cond = Condition("cv")

        def waiter(ctx):
            yield Acquire(lock)
            yield CondWait(cond, lock)
            yield Release(lock)

        def main(ctx):
            kid = yield Spawn(waiter)
            yield Join(kid)  # nobody ever signals

        with pytest.raises(DeadlockError) as err:
            Program(main).run()
        assert err.value.blocked  # names the stuck tids

    def test_barrier_missing_participant(self):
        barrier = Barrier(3)  # only two threads will ever arrive

        def party(ctx):
            yield BarrierWait(barrier)

        def main(ctx):
            a = yield Spawn(party)
            b = yield Spawn(party)
            yield Join(a)
            yield Join(b)

        with pytest.raises(DeadlockError):
            Program(main).run()

    def test_mixed_lock_condvar_barrier_all_blocked(self):
        lock = Lock("m")
        cond = Condition("cv")
        barrier = Barrier(2)

        def lock_then_barrier(ctx):
            yield Acquire(lock)
            # Holds the lock forever while waiting at a barrier no one
            # else can reach.
            yield BarrierWait(barrier)
            yield Release(lock)

        def cond_waiter(ctx):
            yield Acquire(lock)  # blocks behind lock_then_barrier
            yield CondWait(cond, lock)
            yield Release(lock)

        def main(ctx):
            a = yield Spawn(lock_then_barrier)
            yield Compute(3)
            b = yield Spawn(cond_waiter)
            yield Join(a)
            yield Join(b)

        with pytest.raises(DeadlockError) as err:
            Program(main).run(policy=RoundRobinPolicy())
        # All three survivors (main included) are accounted for.
        assert len(err.value.blocked) == 3

    def test_semaphore_starvation_deadlocks(self):
        sem = Semaphore(0)

        def consumer(ctx):
            yield SemWait(sem)  # no producer exists

        def main(ctx):
            kid = yield Spawn(consumer)
            yield Join(kid)

        with pytest.raises(DeadlockError):
            Program(main).run()
