"""Tests for the ablation experiments and their mechanisms."""

import pytest

from repro.experiments import ablations
from repro.experiments.traces import record_trace
from repro.hardware import SimConfig, simulate_trace
from repro.hardware.precise_unit import PreciseCheckUnit
from repro.hardware.hierarchy import MemoryHierarchy
from repro.hardware.metadata import MetadataLayout
from repro.swclean import run_software_clean
from repro.workloads import get_benchmark


class TestPreciseUnitMechanics:
    def make(self):
        hierarchy = MemoryHierarchy(n_cores=2)
        unit = PreciseCheckUnit(hierarchy, MetadataLayout("clean"), n_threads=3)
        unit.set_thread(0, tid=1, clock=1)
        unit.set_thread(1, tid=2, clock=1)
        return unit

    def test_reads_update_read_metadata(self):
        unit = self.make()
        unit.check(0, 0x1000, 4, is_write=False, private=False)
        assert unit.stats.read_meta_updates == 1

    def test_concurrent_reads_inflate(self):
        unit = self.make()
        unit.check(0, 0x1000, 4, is_write=False, private=False)
        unit.check(1, 0x1000, 4, is_write=False, private=False)
        assert unit.stats.inflations == 1

    def test_same_thread_rereads_do_not_inflate(self):
        unit = self.make()
        unit.check(0, 0x1000, 4, is_write=False, private=False)
        unit.check(0, 0x1000, 4, is_write=False, private=False)
        assert unit.stats.inflations == 0

    def test_write_scans_and_clears_inflated_vc(self):
        unit = self.make()
        unit.check(0, 0x1000, 4, is_write=False, private=False)
        unit.check(1, 0x1000, 4, is_write=False, private=False)
        unit.check(0, 0x1000, 4, is_write=True, private=False)
        assert unit.stats.read_vc_scans == 1
        # a later pair of concurrent reads inflates again from scratch
        unit.check(0, 0x1000, 4, is_write=False, private=False)
        unit.check(1, 0x1000, 4, is_write=False, private=False)
        assert unit.stats.inflations == 2

    def test_private_accesses_skip_read_side(self):
        unit = self.make()
        unit.check(0, 0x1000, 4, is_write=False, private=True)
        assert unit.stats.read_meta_updates == 0

    def test_precise_costs_at_least_clean(self):
        """On the same trace, the precise unit's machine is never faster
        than CLEAN's (it does a superset of the work)."""
        trace = record_trace(get_benchmark("fft"), scale="test")
        clean = simulate_trace(trace, SimConfig(detection=True))
        precise = simulate_trace(
            trace, SimConfig(detection=True, check_unit="precise")
        )
        assert precise.cycles >= clean.cycles

    def test_unknown_unit_rejected(self):
        trace = record_trace(get_benchmark("fft"), scale="test")
        with pytest.raises(ValueError):
            simulate_trace(trace, SimConfig(detection=True, check_unit="odd"))


class TestAtomicityPricing:
    def test_lock_mode_costs_more(self):
        spec = get_benchmark("fft")
        cas = run_software_clean(spec, scale="test", atomicity="cas")
        lock = run_software_clean(spec, scale="test", atomicity="lock")
        assert lock.slowdown_detection > cas.slowdown_detection

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            run_software_clean(
                get_benchmark("fft"), scale="test", atomicity="hopeful"
            )


class TestAblationExperiments:
    def test_a1_precision_always_costs(self):
        result = ablations.run_war_precision(scale="test")
        for row in result.rows:
            assert row[2] >= row[1], row[0]
        # the paper's RADISH contrast: precise reaches 2-3x somewhere
        assert max(result.column("precise")) > 2.0

    def test_a2_locking_share_in_paper_band(self):
        result = ablations.run_atomicity(scale="test")
        shares = [float(row[3].rstrip("%")) for row in result.rows]
        assert sum(shares) / len(shares) > 30.0  # paper: >40% cited

    def test_a3_rollovers_monotone_in_clock_width(self):
        result = ablations.run_clock_width(scale="test")
        rollovers = result.column("rollovers")
        assert rollovers == sorted(rollovers, reverse=True)
        assert rollovers[0] > 0          # narrow clock rolls over
        assert rollovers[-1] == 0        # wide clock never does
        slowdowns = result.column("full slowdown")
        assert slowdowns[0] >= slowdowns[-1]


class TestInstrumentationAblation:
    def test_conservative_instrumentation_costs_more(self):
        from repro.experiments.ablations import run_instrumentation

        result = run_instrumentation(scale="test")
        for row in result.rows:
            name, exact, half, full, waste = row
            assert exact <= half <= full, name
            assert waste >= 1.0

    def test_instrumented_private_accesses_never_race(self):
        """Checking private accesses is wasteful but harmless: a thread's
        own stack accesses cannot race."""
        from repro.swclean import run_software_clean
        from repro.workloads import get_benchmark

        run = run_software_clean(
            get_benchmark("fft"), scale="test",
            instrument_private_fraction=1.0,
        )
        assert run.result.race is None
        assert run.stats.races_raised == 0

    def test_fraction_validated(self):
        from repro.clean import CleanMonitor

        with pytest.raises(ValueError):
            CleanMonitor(instrument_private_fraction=1.5)
