"""Edge-case and misuse tests across the runtime and detectors."""

import pytest

from repro.core import CleanDetector, DeadlockError, MetadataError
from repro.determinism import KendoGate
from repro.runtime import (
    Acquire,
    Barrier,
    BarrierWait,
    Compute,
    CondSignal,
    Condition,
    Join,
    Lock,
    Program,
    RandomPolicy,
    Read,
    Release,
    Spawn,
    Write,
)


class TestSchedulerMisuse:
    def test_join_nonexistent_thread_deadlocks(self):
        def main(ctx):
            yield Join(42)

        with pytest.raises(DeadlockError):
            Program(main).run()

    def test_double_join_deadlocks(self):
        def child(ctx):
            yield Compute(1)

        def main(ctx):
            kid = yield Spawn(child)
            yield Join(kid)
            yield Join(kid)  # tid already reaped

        with pytest.raises(DeadlockError):
            Program(main).run()

    def test_release_of_other_threads_lock(self):
        lock = Lock()

        def holder(ctx):
            yield Acquire(lock)
            yield Compute(10)
            yield Release(lock)

        def thief(ctx):
            yield Compute(1)
            yield Release(lock)  # does not hold it

        def main(ctx):
            a = yield Spawn(holder)
            b = yield Spawn(thief)
            yield Join(a)
            yield Join(b)

        with pytest.raises(RuntimeError, match="released"):
            Program(main).run()

    def test_signal_without_waiters_is_lost(self):
        cond = Condition()

        def main(ctx):
            yield CondSignal(cond)
            yield CondSignal(cond)
            return "done"

        assert Program(main).run().thread_results[0] == "done"

    def test_main_thread_returning_value_with_children_unjoined(self):
        """Unjoined finished children don't block program completion."""

        def child(ctx):
            yield Compute(1)
            return "orphan"

        def main(ctx):
            yield Spawn(child)
            yield Compute(10)
            return "main"

        result = Program(main).run()
        assert result.thread_results[0] == "main"

    def test_generator_exception_propagates(self):
        def main(ctx):
            yield Compute(1)
            raise ValueError("inside the program")

        with pytest.raises(ValueError, match="inside the program"):
            Program(main).run()

    def test_zero_size_read_rejected_by_memory_detector_chain(self):
        detector = CleanDetector()
        detector.spawn_root()
        with pytest.raises(ValueError):
            detector.check_write(0, 0, 0)


class TestKendoEdges:
    def test_gate_before_attach_fails_loudly(self):
        gate = KendoGate()
        with pytest.raises(AssertionError):
            gate.may_sync(0, None)

    def test_single_thread_always_has_turn(self):
        def main(ctx):
            lock = Lock()
            for _ in range(5):
                yield Acquire(lock)
                yield Release(lock)
            return "ok"

        result = Program(main).run(monitors=[KendoGate()])
        assert result.thread_results[0] == "ok"

    def test_kendo_with_barrier_only_program(self):
        barrier = Barrier(3)

        def worker(ctx, weight):
            for _ in range(3):
                yield Compute(weight)
                yield BarrierWait(barrier)

        def main(ctx):
            kids = []
            for weight in (1, 50, 200):
                kids.append((yield Spawn(worker, (weight,))))
            for kid in kids:
                yield Join(kid)

        fingerprints = set()
        for seed in range(4):
            result = Program(main).run(
                policy=RandomPolicy(seed), monitors=[KendoGate()]
            )
            fingerprints.add(
                tuple((c.tid, c.kind) for c in result.sync_log)
            )
        assert len(fingerprints) == 1

    def test_deadlock_still_detected_under_kendo(self):
        l1, l2 = Lock("a"), Lock("b")

        def t1(ctx):
            yield Acquire(l1)
            yield Compute(5)
            yield Acquire(l2)

        def t2(ctx):
            yield Acquire(l2)
            yield Compute(5)
            yield Acquire(l1)

        def main(ctx):
            a = yield Spawn(t1)
            b = yield Spawn(t2)
            yield Join(a)
            yield Join(b)

        # Under Kendo the lock order is deterministic: either the ABBA
        # deadlock always happens or it never does; whichever way, the
        # run must terminate (deadlock -> DeadlockError).
        outcomes = set()
        for seed in range(4):
            try:
                Program(main).run(
                    policy=RandomPolicy(seed), monitors=[KendoGate()]
                )
                outcomes.add("completed")
            except DeadlockError:
                outcomes.add("deadlock")
        assert len(outcomes) == 1


class TestDetectorEdges:
    def test_operations_on_never_spawned_detector(self):
        detector = CleanDetector()
        with pytest.raises(MetadataError):
            detector.check_read(0, 0)

    def test_join_of_unknown_child(self):
        detector = CleanDetector()
        detector.spawn_root()
        with pytest.raises(MetadataError):
            detector.join(0, 5)

    def test_huge_access_spans_many_epochs(self):
        detector = CleanDetector()
        detector.spawn_root()
        detector.check_write(0, 0, 256)
        assert detector.shadow.touched_bytes == 256

    def test_interleaved_sizes_same_location(self):
        """1/2/4/8-byte accesses to overlapping ranges stay consistent."""
        detector = CleanDetector()
        detector.spawn_root()
        detector.check_write(0, 0, 8)
        detector.check_write(0, 2, 2)
        detector.check_read(0, 0, 4)
        detector.check_read(0, 7, 1)
        assert detector.stats.races_raised == 0
