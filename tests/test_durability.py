"""Durability of the race-checking service: journal, recovery, dedup.

The crash-safety contract of ``repro serve`` (PR 10):

* the write-ahead submission journal survives ``kill -9`` — every
  acknowledged submission is journaled before the client sees its 202,
  and a torn final record salvages cleanly at *every* byte boundary;
* restart recovery re-enqueues unfinished work, restores finished
  verdicts, and turns missing traces into explicit ``lost_trace``
  failures — never silence, never phantoms;
* the content-hashed verdict cache serves duplicate uploads without
  touching the worker pool, refunding the quota token;
* the worker pool survives a respawn storm by degrading instead of
  thrashing;
* the whole loop closes end to end: SIGKILL a live daemon mid-burst,
  restart it on the same spool, and every acknowledged submission
  reaches the exact verdict of an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.exec import PersistentPool
from repro.exec.job import Job
from repro.experiments.traces import record_trace
from repro.obs import MetricsRegistry
from repro.runtime.trace import read_frames, write_frame
from repro.service import (
    QueueFull,
    RaceCheckService,
    ServeDaemon,
    ServiceDraining,
    SubmissionJournal,
    SubmissionStore,
)
from repro.service.jobs import analyze_submission
from repro.workloads.suite import get_benchmark


# -- fixtures ---------------------------------------------------------------


@pytest.fixture(scope="module")
def racy_bytes(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "racy.trace"
    trace = record_trace(get_benchmark("dedup"), scale="test", seed=1,
                         racy=True)
    trace.save(path)
    return path.read_bytes()


@pytest.fixture(scope="module")
def clean_bytes(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "clean.trace"
    trace = record_trace(get_benchmark("dedup"), scale="test", seed=1,
                         racy=False)
    trace.save(path)
    return path.read_bytes()


def _counter(registry, name):
    try:
        return registry.value(name)
    except KeyError:
        return 0


def _service(spool, **kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("inline_pool", True)
    kwargs.setdefault("registry", MetricsRegistry())
    return RaceCheckService(spool=str(spool), **kwargs)


# -- generic CRC frame streams ----------------------------------------------


class TestFrames:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "frames.bin"
        payloads = [b"alpha", b"", b"x" * 300, json.dumps({"k": 1}).encode()]
        with open(path, "wb") as fh:
            for payload in payloads:
                write_frame(fh, payload)
        out, good = read_frames(path.read_bytes())
        assert out == payloads
        assert good == path.stat().st_size

    def test_strict_raises_on_torn_tail(self, tmp_path):
        path = tmp_path / "frames.bin"
        with open(path, "wb") as fh:
            write_frame(fh, b"whole")
            write_frame(fh, b"torn-away")
        data = path.read_bytes()[:-3]
        with pytest.raises(ValueError, match="truncated|corrupt"):
            read_frames(data)

    def test_salvage_stops_at_damage(self, tmp_path):
        path = tmp_path / "frames.bin"
        with open(path, "wb") as fh:
            write_frame(fh, b"keep-me")
            write_frame(fh, b"bit-rot")
        data = bytearray(path.read_bytes())
        data[-2] ^= 0xFF  # corrupt the second payload -> CRC mismatch
        out, good = read_frames(bytes(data), salvage=True)
        assert out == [b"keep-me"]
        assert good == 8 + len(b"keep-me")


# -- the submission journal -------------------------------------------------


def _journal_records(n):
    records = [
        {"op": "accepted", "id": f"s{i:06d}", "tenant": "t",
         "request_id": f"r{i}", "size": 100 + i, "events": 10 * i,
         "sha256": "", "trace": f"s{i:06d}.trace"}
        for i in range(1, n + 1)
    ]
    records.append({"op": "running", "id": "s000001"})
    return records


class TestJournal:
    def test_append_replay_round_trip(self, tmp_path):
        path = tmp_path / "j.clnj"
        journal = SubmissionJournal(path)
        records = _journal_records(3)
        for record in records:
            journal.append(record)
        journal.close()
        assert SubmissionJournal(path).replay() == records
        assert journal.salvaged_bytes == 0

    def test_torn_tail_salvages_at_every_byte_boundary(self, tmp_path):
        """Truncate the journal at every byte of the final record:
        recovery never raises and never resurrects a phantom."""
        path = tmp_path / "j.clnj"
        journal = SubmissionJournal(path)
        records = _journal_records(2)  # 3 records: 2 accepted + 1 running
        for record in records:
            journal.append(record)
        journal.close()
        data = path.read_bytes()
        final = json.dumps(
            records[-1], sort_keys=True, separators=(",", ":")
        ).encode()
        final_start = len(data) - len(final) - 8
        for cut in range(final_start, len(data) + 1):
            torn = tmp_path / f"torn{cut}.clnj"
            torn.write_bytes(data[:cut])
            replayed = SubmissionJournal(torn).replay()
            expected = records if cut == len(data) else records[:-1]
            assert replayed == expected, f"cut at byte {cut}"
            # truncate=True must converge the file to the clean prefix
            assert torn.stat().st_size == (
                len(data) if cut == len(data) else final_start
            )

    def test_truncated_magic_is_an_empty_journal(self, tmp_path):
        path = tmp_path / "j.clnj"
        journal = SubmissionJournal(path)
        journal.append({"op": "accepted", "id": "s000001"})
        journal.close()
        for keep in range(0, 8):  # JOURNAL_MAGIC is 8 bytes
            torn = tmp_path / f"magic{keep}.clnj"
            torn.write_bytes(path.read_bytes()[:keep])
            assert SubmissionJournal(torn).replay() == []

    def test_append_after_salvage(self, tmp_path):
        path = tmp_path / "j.clnj"
        journal = SubmissionJournal(path)
        journal.append({"op": "accepted", "id": "s000001"})
        journal.append({"op": "accepted", "id": "s000002"})
        journal.close()
        path.write_bytes(path.read_bytes()[:-5])  # tear the tail
        journal = SubmissionJournal(path)
        assert journal.replay() == [{"op": "accepted", "id": "s000001"}]
        journal.append({"op": "running", "id": "s000001"})
        journal.close()
        assert SubmissionJournal(path).replay() == [
            {"op": "accepted", "id": "s000001"},
            {"op": "running", "id": "s000001"},
        ]

    def test_rewrite_compacts(self, tmp_path):
        path = tmp_path / "j.clnj"
        journal = SubmissionJournal(path)
        for record in _journal_records(5):
            journal.append(record)
        journal.append({"op": "done", "id": "s000002", "attempts": 1,
                        "latency_s": 0.1, "result": {"verdict": "clean"}})
        assert journal.dead_records == 1
        live = [{"op": "accepted", "id": "s000001"}]
        journal.rewrite(live)
        assert journal.dead_records == 0
        journal.close()
        assert SubmissionJournal(path).replay() == live


# -- store-level recovery ---------------------------------------------------


class TestStoreRecovery:
    def _store(self, spool):
        return SubmissionStore(str(spool), journal=True)

    def test_resumes_unfinished_with_intact_trace(self, tmp_path, racy_bytes):
        store = self._store(tmp_path / "spool")
        submission = store.create("t", "r1", racy_bytes, events=10)
        store.commit(submission.id)
        store.close()

        fresh = self._store(tmp_path / "spool")
        report = fresh.recover()
        assert report["resumed"] == [submission.id]
        assert report["lost"] == [] and report["restored"] == []
        resumed = fresh.get(submission.id)
        assert resumed.state == "queued" and resumed.recovered

    def test_restores_terminal_verdicts(self, tmp_path, racy_bytes):
        store = self._store(tmp_path / "spool")
        submission = store.create("t", "r1", racy_bytes, events=10)
        store.commit(submission.id)
        store.mark_running(submission.id)
        store.finish(submission.id, result={"verdict": "racy"}, attempts=2)
        store.close()

        fresh = self._store(tmp_path / "spool")
        report = fresh.recover()
        assert report["restored"] == [submission.id]
        restored = fresh.get(submission.id)
        assert restored.state == "done"
        assert restored.result == {"verdict": "racy"}
        assert restored.attempts == 2

    def test_missing_trace_fails_loudly(self, tmp_path, racy_bytes):
        store = self._store(tmp_path / "spool")
        submission = store.create("t", "r1", racy_bytes, events=10)
        store.commit(submission.id)
        store.close()
        os.unlink(submission.trace_path)

        fresh = self._store(tmp_path / "spool")
        report = fresh.recover()
        assert report["lost"] == [submission.id]
        lost = fresh.get(submission.id)
        assert lost.state == "failed"
        assert "lost_trace" in lost.error

    def test_corrupt_trace_fails_loudly(self, tmp_path, racy_bytes):
        store = self._store(tmp_path / "spool")
        submission = store.create("t", "r1", racy_bytes, events=10)
        store.commit(submission.id)
        store.close()
        damaged = bytearray(racy_bytes)
        damaged[len(damaged) // 2] ^= 0xFF
        with open(submission.trace_path, "wb") as fh:
            fh.write(bytes(damaged))

        fresh = self._store(tmp_path / "spool")
        report = fresh.recover()
        assert report["lost"] == [submission.id]

    def test_orphan_spools_reaped(self, tmp_path, racy_bytes):
        spool = tmp_path / "spool"
        store = self._store(spool)
        store.create("t", "r1", racy_bytes, events=10)
        # committed to spool but never journaled: the client never got
        # a 202, so recovery owes it nothing
        store.close()

        fresh = self._store(spool)
        report = fresh.recover()
        assert report["journaled"] == 0
        assert report["orphan_spools"] == 1
        assert not list(spool.glob("*.trace"))

    def test_phantom_records_never_fabricate_submissions(self, tmp_path):
        spool = tmp_path / "spool"
        spool.mkdir()
        journal = SubmissionJournal(spool / "journal.clnj")
        # lifecycle records for an id that was never accepted (salvage
        # aftermath): recovery must ignore them, not invent a submission
        journal.append({"op": "running", "id": "s000009"})
        journal.append({"op": "done", "id": "s000009", "attempts": 1,
                        "latency_s": 0.1, "result": {"verdict": "clean"}})
        journal.close()

        store = self._store(spool)
        report = store.recover()
        assert report["journaled"] == 0
        assert store.get("s000009") is None

    def test_dry_run_touches_nothing(self, tmp_path, racy_bytes):
        spool = tmp_path / "spool"
        store = self._store(spool)
        submission = store.create("t", "r1", racy_bytes, events=10)
        store.commit(submission.id)
        store.close()
        os.unlink(submission.trace_path)
        journal_bytes = (spool / "journal.clnj").read_bytes()

        fresh = self._store(spool)
        report = fresh.recover(dry_run=True)
        assert report["lost"] == [submission.id]
        assert (spool / "journal.clnj").read_bytes() == journal_bytes

    def test_ids_continue_past_recovered(self, tmp_path, racy_bytes):
        spool = tmp_path / "spool"
        store = self._store(spool)
        s1 = store.create("t", "r1", racy_bytes, events=10)
        store.commit(s1.id)
        store.close()

        fresh = self._store(spool)
        fresh.recover()
        s2 = fresh.create("t", "r2", racy_bytes, events=10)
        assert s2.id > s1.id


# -- the verdict dedup cache ------------------------------------------------


class TestVerdictCache:
    def test_duplicate_upload_serves_from_cache(self, tmp_path, racy_bytes):
        service = _service(tmp_path / "spool")
        service.start()
        try:
            first = service.submit(racy_bytes, tenant="a")
            assert service.drain(timeout=30)
            second = service.submit(racy_bytes, tenant="a")
            assert second["cached"] is True

            r1 = service.result(first["id"])
            r2 = service.result(second["id"])
            assert r2["state"] == "done"
            assert r2["verdict"] == r1["verdict"] == "racy"
            assert r2["attempts"] == 0
            # the full report is byte-identical, not merely same verdict
            assert (service.report(second["id"])["report"]
                    == service.report(first["id"])["report"])
            # the hit never touched the worker pool
            assert service.pool.status_snapshot()["submitted"] == 1
            registry = service.registry
            assert _counter(registry, "cache.hit") == 1
            assert _counter(registry, "cache.miss") == 1
            assert _counter(registry, 'cache.hit{tenant="a"}') == 1
        finally:
            service.stop()

    def test_cache_hits_refund_quota(self, tmp_path, racy_bytes):
        service = _service(tmp_path / "spool", quota_tokens=2)
        service.start()
        try:
            service.submit(racy_bytes, tenant="a")
            assert service.drain(timeout=30)
            # tokens: 2 -> 1.  Each hit consumes then refunds, so any
            # number of duplicates fits in the remaining budget.
            for _ in range(4):
                payload = service.submit(racy_bytes, tenant="a")
                assert payload["cached"] is True
        finally:
            service.stop()

    def test_no_dedup_disables_cache(self, tmp_path, racy_bytes):
        service = _service(tmp_path / "spool", dedup=False)
        service.start()
        try:
            service.submit(racy_bytes)
            assert service.drain(timeout=30)
            second = service.submit(racy_bytes)
            assert "cached" not in second
            assert service.drain(timeout=30)
            assert service.pool.status_snapshot()["submitted"] == 2
            assert _counter(service.registry, "cache.hit") == 0
        finally:
            service.stop()

    def test_different_analysis_params_miss(self, tmp_path, racy_bytes):
        spool = tmp_path / "spool"
        batch = _service(spool, mode="batch")
        batch.start()
        try:
            batch.submit(racy_bytes)
            assert batch.drain(timeout=30)
        finally:
            batch.stop()
        # same bytes, different analysis mode: the cache key includes
        # the analysis parameters, so this must be a miss
        scalar = _service(spool, mode="scalar")
        scalar.start()
        try:
            payload = scalar.submit(racy_bytes)
            assert "cached" not in payload
            assert scalar.drain(timeout=30)
        finally:
            scalar.stop()


# -- spool hygiene ----------------------------------------------------------


class TestSpoolHygiene:
    def test_queue_full_discard_reaps_spool_file(self, tmp_path, racy_bytes):
        spool = tmp_path / "spool"
        service = _service(spool, queue_size=1, dedup=False)
        service.start()
        service.pause()
        try:
            accepted = 0
            with pytest.raises(QueueFull):
                for _ in range(10):
                    service.submit(racy_bytes)
                    accepted += 1
            assert accepted >= 1
            # every rejected upload is gone from disk already
            assert len(list(spool.glob("*.trace"))) == accepted
            service.resume()
            assert service.drain(timeout=60)
            # and the accepted ones are reaped after their verdicts
            assert list(spool.glob("*.trace")) == []
        finally:
            service.stop()

    def test_verdict_reaps_spool_file(self, tmp_path, racy_bytes):
        spool = tmp_path / "spool"
        service = _service(spool)
        service.start()
        try:
            service.submit(racy_bytes)
            assert service.drain(timeout=30)
            assert list(spool.glob("*.trace")) == []
        finally:
            service.stop()


# -- draining and preserve-stop ---------------------------------------------


class TestDraining:
    def test_draining_rejects_with_503(self, tmp_path, racy_bytes):
        service = _service(tmp_path / "spool")
        service.start()
        try:
            service.begin_drain()
            with pytest.raises(ServiceDraining):
                service.submit(racy_bytes)
            assert _counter(service.registry, "serve.drain_rejected") == 1
        finally:
            service.stop()

    def test_daemon_maps_draining_to_503_retry_after(self, tmp_path,
                                                     racy_bytes):
        import http.client

        service = _service(tmp_path / "spool")
        with ServeDaemon(service, collect=False) as daemon:
            service.begin_drain()
            conn = http.client.HTTPConnection("127.0.0.1", daemon.port,
                                              timeout=10)
            try:
                conn.request("POST", "/submit", body=racy_bytes)
                resp = conn.getresponse()
                payload = json.loads(resp.read())
                assert resp.status == 503
                assert payload["error"] == "draining"
                assert int(resp.getheader("Retry-After")) >= 1
            finally:
                conn.close()

    def test_preserve_stop_then_restart_recovers(self, tmp_path, racy_bytes,
                                                 clean_bytes):
        spool = tmp_path / "spool"
        service = _service(spool, dedup=False)
        service.start()
        service.pause()
        racy_sid = service.submit(racy_bytes)["id"]
        clean_sid = service.submit(clean_bytes)["id"]
        service.stop(preserve_queued=True)
        assert service.store.get(racy_sid).state == "queued"

        reborn = _service(spool, dedup=False)
        reborn.start()
        try:
            assert sorted(reborn.recovery["resumed"]) == sorted(
                [racy_sid, clean_sid]
            )
            assert reborn.drain(timeout=60)
            assert reborn.result(racy_sid)["verdict"] == "racy"
            assert reborn.result(clean_sid)["verdict"] == "clean"
            assert reborn.result(racy_sid)["recovered"] is True
            assert _counter(reborn.registry, "serve.recovered") == 2
        finally:
            reborn.stop()

    def test_plain_stop_still_settles_queued(self, tmp_path, racy_bytes):
        # the pre-durability contract is unchanged: a default stop()
        # fails queued work loudly instead of leaving it pending
        service = _service(tmp_path / "spool")
        service.start()
        service.pause()
        sid = service.submit(racy_bytes)["id"]
        service.stop()
        result = service.store.get(sid)
        assert result.state == "failed"
        assert "ServiceStopped" in result.error


# -- respawn-storm guard ----------------------------------------------------


class TestRespawnStorm:
    def test_storm_degrades_instead_of_thrashing(self):
        pool = PersistentPool(workers=1, retries=0, respawn_limit=2,
                              respawn_backoff=0.01,
                              registry=MetricsRegistry())
        pool.start()
        try:
            tickets = [
                pool.submit(Job(
                    fn="repro.faults:chaos_job",
                    config={"benchmark": "lu_ncb", "scale": "test",
                            "inject_fault": {"kind": "worker-crash"}},
                ))
                for _ in range(5)
            ]
            results = [t.wait(timeout=60) for t in tickets]
            assert all(r.status == "failed" for r in results)
            snap = pool.status_snapshot()
            assert snap["respawn_storm"] == 1
            assert snap["degraded"] is True
            # the pool stopped forking: respawns stayed at the limit + 1
            assert snap["respawns"] == 3
            # and it still answers — inline, structurally
            clean = pool.submit(Job(
                fn="repro.faults:chaos_job",
                config={"benchmark": "lu_ncb", "scale": "test"},
            )).wait(timeout=60)
            assert clean.status == "ok"
        finally:
            pool.stop()

    def test_transient_crash_does_not_storm(self, tmp_path):
        scar = tmp_path / "crash.scar"
        pool = PersistentPool(workers=1, retries=1, respawn_limit=8,
                              respawn_backoff=0.01)
        pool.start()
        try:
            result = pool.submit(Job(
                fn="repro.faults:chaos_job",
                config={"benchmark": "lu_ncb", "scale": "test",
                        "inject_fault": {"kind": "worker-crash",
                                         "scar": str(scar)}},
            )).wait(timeout=60)
            assert result.status == "ok"
            snap = pool.status_snapshot()
            assert snap["respawn_storm"] == 0
            assert snap["degraded"] is False
        finally:
            pool.stop()


# -- the full loop: kill -9 a live daemon -----------------------------------


class TestDaemonKill:
    def test_crash_recovery_determinism(self, tmp_path):
        from repro.faults import run_daemon_kill

        report = run_daemon_kill(tmp_path / "dk", seed=2, submissions=3,
                                 workers=2)
        assert report["accepted"] == 3
        assert report["lost"] == []
        assert report["failed"] == []
        assert report["mismatched"] == []
        assert report["matched"] == 3
        assert report["ok"] is True
        assert (tmp_path / "dk" / "daemon_kill_report.json").exists()


# -- service status surfaces durability -------------------------------------


class TestStatus:
    def test_status_reports_durability_and_recovery(self, tmp_path,
                                                    racy_bytes):
        spool = tmp_path / "spool"
        service = _service(spool)
        service.start()
        service.pause()
        service.submit(racy_bytes)
        service.stop(preserve_queued=True)

        reborn = _service(spool)
        reborn.start()
        try:
            status = reborn.status()
            assert status["durability"]["dedup"] is True
            assert status["durability"]["journal"].endswith("journal.clnj")
            assert status["recovery"]["resumed"] == 1
            assert reborn.drain(timeout=60)
        finally:
            reborn.stop()
