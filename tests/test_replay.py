"""Tests for schedule record/replay and the §3.1.2 debugging workflow."""

import pytest

from repro.baselines import FastTrackDetector, VcRaceDetector
from repro.clean import CleanMonitor
from repro.core import CleanDetector
from repro.runtime import Program, RandomPolicy, Read, Spawn, Join, Write, Compute
from repro.runtime.replay import RecordingPolicy, ReplayDivergence, ReplayPolicy
from repro.workloads.randprog import make_random_program


def racy_program():
    def toucher(ctx, addr):
        yield Compute(2)
        value = yield Read(addr, 4)
        yield Write(addr, 4, value + 1)

    def main(ctx):
        addr = ctx.alloc(4)
        a = yield Spawn(toucher, (addr,))
        b = yield Spawn(toucher, (addr,))
        yield Join(a)
        yield Join(b)
        return (yield Read(addr, 4))

    return Program(main)


class TestRecordReplay:
    def test_replay_reproduces_fingerprint(self):
        recording = RecordingPolicy(RandomPolicy(7))
        first = racy_program().run(policy=recording, max_threads=8)
        second = racy_program().run(
            policy=ReplayPolicy(recording.log), max_threads=8
        )
        assert first.fingerprint() == second.fingerprint()

    def test_replay_reproduces_race(self):
        for seed in range(10):
            recording = RecordingPolicy(RandomPolicy(seed))
            first = racy_program().run(
                policy=recording,
                monitors=[CleanMonitor(detector=CleanDetector(max_threads=8))],
                max_threads=8,
            )
            replayed = racy_program().run(
                policy=ReplayPolicy(recording.log),
                monitors=[CleanMonitor(detector=CleanDetector(max_threads=8))],
                max_threads=8,
            )
            if first.race is None:
                assert replayed.race is None
            else:
                assert replayed.race is not None
                assert replayed.race.kind == first.race.kind
                assert replayed.race.address == first.race.address

    def test_sec312_workflow(self):
        """The paper's workflow: CLEAN stops an execution; replaying the
        same schedule with a precise detector enumerates every race of
        that interleaving (including the WARs CLEAN skipped)."""
        raced = None
        for seed in range(30):
            recording = RecordingPolicy(RandomPolicy(seed))
            result = racy_program().run(
                policy=recording,
                monitors=[CleanMonitor(detector=CleanDetector(max_threads=8))],
                max_threads=8,
            )
            if result.race is not None:
                raced = (recording.log, result.race)
                break
        assert raced is not None, "no seed raced"
        log, race = raced
        oracle = VcRaceDetector(max_threads=8, record_only=True)
        from repro.runtime import RoundRobinPolicy

        # the log covers only the prefix CLEAN allowed to run; continue
        # past the stopping point with any policy.
        racy_program().run(
            policy=ReplayPolicy(log, fallback=RoundRobinPolicy()),
            monitors=[CleanMonitor(detector=oracle)],
            max_threads=8,
        )
        kinds = oracle.race_kinds()
        assert race.kind in kinds  # the stopping race is among them
        assert sum(kinds.values()) >= 1

    def test_replay_works_across_detector_swaps(self):
        """Monitors never influence scheduling, so the log replays under
        a different (heavier) detector."""
        recording = RecordingPolicy(RandomPolicy(3))
        first = racy_program().run(policy=recording, max_threads=8)
        ft = FastTrackDetector(max_threads=8, record_only=True)
        second = racy_program().run(
            policy=ReplayPolicy(recording.log),
            monitors=[CleanMonitor(detector=ft)],
            max_threads=8,
        )
        assert first.fingerprint() == second.fingerprint()

    def test_save_load(self, tmp_path):
        recording = RecordingPolicy(RandomPolicy(5))
        first = racy_program().run(policy=recording, max_threads=8)
        path = tmp_path / "schedule.json"
        recording.save(path)
        second = racy_program().run(
            policy=ReplayPolicy.load(path), max_threads=8
        )
        assert first.fingerprint() == second.fingerprint()

    def test_negative_log_index_is_divergence(self):
        """Regression: a negative index from a corrupt/hand-edited log
        passed the old ``index >= len(candidates)`` check and silently
        indexed from the *end* of the candidate list — a wrong schedule
        replayed without any error."""
        policy = ReplayPolicy([-1])
        with pytest.raises(ReplayDivergence, match="out of range"):
            policy.pick([10, 20, 30], step=0)

    def test_out_of_range_log_index_is_divergence(self):
        policy = ReplayPolicy([3])
        with pytest.raises(ReplayDivergence, match="out of range"):
            policy.pick([10, 20, 30], step=0)
        # In-range indices still replay exactly.
        assert ReplayPolicy([2]).pick([10, 20, 30], step=0) == 30

    def test_divergence_detected_on_wrong_program(self):
        recording = RecordingPolicy(RandomPolicy(1))
        racy_program().run(policy=recording, max_threads=8)

        def different(ctx):
            for _ in range(50):
                yield Compute(1)

        with pytest.raises(ReplayDivergence):
            Program(different).run(
                policy=ReplayPolicy(recording.log), max_threads=8
            )

    def test_random_programs_replay_exactly(self):
        for pseed in range(5):
            program, _ = make_random_program(
                pseed, n_threads=3, ops_per_thread=8, race_probability=0.3
            )
            recording = RecordingPolicy(RandomPolicy(pseed))
            first = program.run(policy=recording, max_threads=8)
            program2, _ = make_random_program(
                pseed, n_threads=3, ops_per_thread=8, race_probability=0.3
            )
            second = program2.run(
                policy=ReplayPolicy(recording.log), max_threads=8
            )
            assert first.fingerprint() == second.fingerprint()
