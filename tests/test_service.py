"""Tests for the race-checking service stack (``python -m repro serve``).

Covers the hardened TelemetryServer (client-disconnect swallowing with
``serve.client_aborts`` accounting, idempotent/concurrent stop, the
port-restart contract, request routing), the quota manager, the
persistent worker pool, the RaceCheckService pipeline (CRC rejection,
backpressure, quota exhaustion, chaos crash recovery, verdict parity
with direct ``analyze_trace``), and the full HTTP daemon under
concurrent clients.
"""

import http.client
import json
import socket
import threading
import time

import pytest

from repro.analysis import analyze_trace
from repro.exec import Job, PersistentPool
from repro.experiments.traces import record_trace
from repro.obs import MetricsRegistry, Tracer
from repro.obs.serve import Request, Response, TelemetryServer
from repro.service import (
    CorruptTrace,
    NotReady,
    QueueFull,
    QuotaExceeded,
    QuotaManager,
    RaceCheckService,
    ServeDaemon,
    UnknownSubmission,
)
from repro.workloads.suite import get_benchmark


# -- fixtures ---------------------------------------------------------------


@pytest.fixture(scope="module")
def racy_bytes(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "racy.trace"
    trace = record_trace(get_benchmark("dedup"), scale="test", seed=1,
                         racy=True)
    trace.save(path)
    return path.read_bytes()


@pytest.fixture(scope="module")
def clean_bytes(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "clean.trace"
    trace = record_trace(get_benchmark("dedup"), scale="test", seed=1,
                         racy=False)
    trace.save(path)
    return path.read_bytes()


def _corrupt(data: bytes) -> bytes:
    """Flip one payload byte (past the magic) so the CRC walk fails."""
    flipped = bytearray(data)
    flipped[len(flipped) // 2] ^= 0xFF
    return bytes(flipped)


def _counter(registry, name):
    """Counter value, 0 while the instrument does not exist yet."""
    try:
        return registry.value(name)
    except KeyError:
        return 0


def _wait_for(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _request(port, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        resp = conn.getresponse()
        raw = resp.read()
        try:
            payload = json.loads(raw)
        except ValueError:
            payload = raw.decode("utf-8", "replace")
        return resp.status, payload, dict(resp.getheaders())
    finally:
        conn.close()


# -- TelemetryServer hardening ----------------------------------------------


class TestTelemetryServer:
    def test_port_survives_restart(self):
        server = TelemetryServer(MetricsRegistry())
        port = server.start()
        assert port > 0 and server.port == port
        server.stop()
        # The bound port stays readable after stop ...
        assert server.port == port
        # ... and an ephemeral-port server rebinds the same port.
        assert server.start() == port
        assert server.port == port
        server.stop()

    def test_stop_idempotent_and_concurrent(self):
        server = TelemetryServer(MetricsRegistry())
        server.start()
        errors = []

        def stopper():
            try:
                server.stop()
            except Exception as exc:  # noqa: BLE001 - the test's assertion
                errors.append(exc)

        threads = [threading.Thread(target=stopper) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        server.stop()  # and once more after the dust settles
        assert errors == []

    def test_stop_before_start_is_noop(self):
        server = TelemetryServer(MetricsRegistry())
        server.stop()
        assert server.port == 0

    def test_routing_exact_prefix_and_404(self):
        server = TelemetryServer(MetricsRegistry())
        seen = {}

        def echo(request: Request) -> Response:
            seen["rest"] = request.rest
            return Response.json({"rest": request.rest})

        server.add_route("GET", "/thing/", echo)
        with server:
            status, payload, _ = _request(server.port, "GET", "/thing/abc")
            assert status == 200 and payload == {"rest": "abc"}
            status, payload, _ = _request(server.port, "GET", "/nope")
            assert status == 404 and payload["error"] == "unknown_endpoint"
            status, _, _ = _request(server.port, "GET", "/metrics")
            assert status == 200

    def test_handler_exception_is_500_not_crash(self):
        registry = MetricsRegistry()
        server = TelemetryServer(registry)
        server.add_route("GET", "/boom", lambda r: 1 / 0)
        with server:
            status, payload, _ = _request(server.port, "GET", "/boom")
            assert status == 500 and payload["error"] == "internal"
            # The thread survived: the server still answers.
            status, _, _ = _request(server.port, "GET", "/metrics")
            assert status == 200
        assert registry.value("serve.errors") == 1

    def test_post_content_length_contract(self):
        server = TelemetryServer(MetricsRegistry(), max_body=64)
        server.add_route("POST", "/in", lambda r: Response.json({"n": len(r.body)}))
        with server:
            # Missing Content-Length -> 411. http.client always sends one,
            # so speak raw sockets.
            with socket.create_connection(("127.0.0.1", server.port)) as sk:
                sk.sendall(b"POST /in HTTP/1.1\r\nHost: x\r\n\r\n")
                assert b"411" in sk.recv(4096).split(b"\r\n", 1)[0]
            status, payload, _ = _request(
                server.port, "POST", "/in", body=b"x" * 100
            )
            assert status == 413 and payload["error"] == "body_too_large"
            status, payload, _ = _request(server.port, "POST", "/in", body=b"hi")
            assert status == 200 and payload == {"n": 2}

    def test_mid_upload_disconnect_counted_not_crashed(self):
        registry = MetricsRegistry()
        server = TelemetryServer(registry)
        server.add_route("POST", "/in", lambda r: Response.json({}))
        with server:
            # Claim 1000 bytes, send 10, vanish.
            sk = socket.create_connection(("127.0.0.1", server.port))
            sk.sendall(
                b"POST /in HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 1000\r\n\r\n" + b"x" * 10
            )
            sk.close()
            assert _wait_for(
                lambda: _counter(registry, "serve.client_aborts") >= 1
            ), "client abort was not counted"
            # The daemon thread survived the abort.
            status, _, _ = _request(server.port, "GET", "/metrics")
            assert status == 200


# -- QuotaManager -----------------------------------------------------------


class TestQuotaManager:
    def test_hard_budget_and_refund(self):
        quota = QuotaManager(tokens=2)
        assert quota.try_acquire("a")
        assert quota.try_acquire("a")
        assert not quota.try_acquire("a")
        # Tenants are independent buckets.
        assert quota.try_acquire("b")
        quota.refund("a")
        assert quota.try_acquire("a")
        snap = quota.snapshot()
        assert snap["a"]["denied"] == 1
        assert snap["a"]["capacity"] == 2.0

    def test_refill(self):
        quota = QuotaManager(tokens=1, refill_per_s=200.0)
        assert quota.try_acquire("t")
        assert not quota.try_acquire("t") or quota.try_acquire("t")
        assert _wait_for(lambda: quota.try_acquire("t"), timeout=2.0)
        assert quota.retry_after_s() == pytest.approx(1 / 200.0)

    def test_unlimited(self):
        quota = QuotaManager(tokens=None)
        assert all(quota.try_acquire("t") for _ in range(100))
        assert quota.snapshot() == {}

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QuotaManager(tokens=0)


class TestQuotaRefund:
    def test_refund_after_exhaustion_restores_exactly_one_token(self):
        quota = QuotaManager(tokens=3)
        for _ in range(3):
            assert quota.try_acquire("t")
        assert not quota.try_acquire("t")
        quota.refund("t")
        assert quota.try_acquire("t")
        # Only ONE token came back.
        assert not quota.try_acquire("t")

    def test_refund_never_exceeds_capacity(self):
        quota = QuotaManager(tokens=2)
        assert quota.try_acquire("t")  # level 1
        for _ in range(10):
            quota.refund("t")  # clamped at capacity 2
        assert quota.snapshot()["t"]["tokens"] == 2.0
        assert quota.try_acquire("t")
        assert quota.try_acquire("t")
        assert not quota.try_acquire("t")

    def test_refund_unknown_tenant_is_a_noop(self):
        quota = QuotaManager(tokens=2)
        quota.refund("ghost")  # must not create the bucket
        assert "ghost" not in quota.snapshot()
        # Unlimited managers ignore refunds entirely.
        QuotaManager(tokens=None).refund("anyone")

    def test_refund_racing_refill_stays_clamped(self):
        # Refunds and a fast continuous refill race on the same bucket:
        # whatever interleaving happens, the level never exceeds
        # capacity and every acquire/refund pair stays consistent.
        quota = QuotaManager(tokens=4, refill_per_s=500.0)
        assert quota.try_acquire("t")
        stop = threading.Event()
        errors = []

        def churn():
            try:
                while not stop.is_set():
                    if quota.try_acquire("t"):
                        quota.refund("t")
            except Exception as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=churn) for _ in range(4)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 0.5
        while time.monotonic() < deadline:
            assert quota.snapshot()["t"]["tokens"] <= 4.0
        stop.set()
        for t in threads:
            t.join()
        assert not errors
        assert quota.snapshot()["t"]["tokens"] <= 4.0


# -- PersistentPool ---------------------------------------------------------


class TestPersistentPool:
    def test_submit_wait_and_counters(self):
        registry = MetricsRegistry()
        pool = PersistentPool(workers=2, registry=registry)
        pool.start()
        try:
            tickets = [
                pool.submit(Job(fn="tests._runner_jobs:double",
                                config={"x": i}, name=f"d{i}"))
                for i in range(5)
            ]
            results = [t.wait(timeout=30) for t in tickets]
            assert all(r is not None and r.ok for r in results)
            assert [r.value["doubled"] for r in results] == [0, 2, 4, 6, 8]
        finally:
            pool.stop()
        assert registry.value("pool.completed") == 5
        assert pool.status_snapshot()["failed"] == 0

    def test_job_error_is_structured(self):
        pool = PersistentPool(workers=1, retries=0)
        pool.start()
        try:
            result = pool.submit(
                Job(fn="tests._runner_jobs:boom", config={}, name="b")
            ).wait(timeout=30)
            assert result is not None and not result.ok
            assert "RuntimeError" in result.error
            # Pool still healthy after a job failure.
            ok = pool.submit(
                Job(fn="tests._runner_jobs:double", config={"x": 3}, name="d")
            ).wait(timeout=30)
            assert ok.ok and ok.value["doubled"] == 6
        finally:
            pool.stop()

    def test_worker_crash_respawn_and_retry(self, tmp_path):
        registry = MetricsRegistry()
        pool = PersistentPool(workers=1, retries=1, registry=registry)
        pool.start()
        try:
            scar = tmp_path / "crash.scar"
            result = pool.submit(
                Job(
                    fn="tests._runner_jobs:double",
                    config={
                        "x": 7,
                        "inject_fault": {
                            "kind": "worker-crash", "scar": str(scar)
                        },
                    },
                    name="crashy",
                )
            ).wait(timeout=30)
            assert result is not None and result.ok, result and result.error
            assert result.value["doubled"] == 14
            assert result.attempts == 2
        finally:
            pool.stop()
        counts = pool.status_snapshot()
        assert counts["crashes"] >= 1 and counts["respawns"] >= 1

    def test_crash_without_retry_is_structured_failure(self):
        pool = PersistentPool(workers=1, retries=0)
        pool.start()
        try:
            result = pool.submit(
                Job(fn="tests._runner_jobs:hard_exit", config={"code": 13},
                    name="dead")
            ).wait(timeout=30)
            assert result is not None and not result.ok
            assert "WorkerCrash" in result.error
            # The replacement worker picks up new jobs.
            ok = pool.submit(
                Job(fn="tests._runner_jobs:double", config={"x": 1}, name="d")
            ).wait(timeout=30)
            assert ok.ok
        finally:
            pool.stop()

    def test_stop_idempotent(self):
        pool = PersistentPool(workers=1)
        pool.start()
        pool.stop()
        pool.stop()
        with pytest.raises(RuntimeError):
            pool.submit(Job(fn="tests._runner_jobs:double", config={"x": 1},
                            name="late"))


# -- RaceCheckService -------------------------------------------------------


def _service(tmp_path, **kwargs):
    kwargs.setdefault("workers", 2)
    return RaceCheckService(spool=str(tmp_path / "spool"), **kwargs)


class TestRaceCheckService:
    def test_verdicts_match_direct_analyze(
        self, tmp_path, racy_bytes, clean_bytes
    ):
        direct_path = tmp_path / "direct.trace"
        direct_path.write_bytes(racy_bytes)
        direct = analyze_trace(str(direct_path), hot_sites=8)
        with _service(tmp_path, hot_sites=8) as service:
            racy = service.submit(racy_bytes)
            clean = service.submit(clean_bytes)
            assert service.drain(timeout=30)
            assert service.result(racy["id"])["verdict"] == "racy"
            assert service.result(clean["id"])["verdict"] == "clean"
            report = service.report(racy["id"])["report"]
            # The service lane and the CLI lane are the same detector.
            assert report["race"] == direct.race
            assert report["counters"] == direct.counters
            assert report["hot_sites"] == direct.to_payload()["hot_sites"]
            # Fleet totals folded into the shared registry.
            assert service.registry.value("clean.checks") > 0
            assert service.registry.value("serve.verdict.racy") == 1
            assert service.registry.value("serve.verdict.clean") == 1

    def test_corrupt_upload_rejected_before_queueing(
        self, tmp_path, racy_bytes
    ):
        with _service(tmp_path, quota_tokens=5) as service:
            with pytest.raises(CorruptTrace):
                service.submit(_corrupt(racy_bytes))
            assert service.registry.value("serve.corrupt_rejected") == 1
            # The rejected upload neither queued nor burned quota.
            assert service.status()["submissions"]["total"] == 0
            assert service.quota.snapshot()["default"]["tokens"] == 5.0

    def test_queue_full_backpressure(self, tmp_path, clean_bytes):
        with _service(
            tmp_path, workers=1, queue_size=2, retry_after_s=2.0
        ) as service:
            service.pause()
            accepted = []
            with pytest.raises(QueueFull) as exc:
                for _ in range(10):
                    accepted.append(service.submit(clean_bytes))
            assert exc.value.retry_after == 2.0
            # The queue holds 2; the dispatcher may have dequeued one
            # item before pause() parked it, so acceptance is bounded
            # at queue_size + 1 — never the whole burst.
            assert 2 <= len(accepted) <= 3
            assert service.registry.value("serve.queue_rejected") >= 1
            # Rejected submissions leave no trace behind.
            assert service.status()["submissions"]["total"] == len(accepted)
            service.resume()
            assert service.drain(timeout=30)
            for payload in accepted:
                assert service.result(payload["id"])["verdict"] == "clean"

    def test_quota_exhaustion(self, tmp_path, clean_bytes):
        with _service(tmp_path, quota_tokens=2) as service:
            service.submit(clean_bytes, tenant="acme")
            service.submit(clean_bytes, tenant="acme")
            with pytest.raises(QuotaExceeded) as exc:
                service.submit(clean_bytes, tenant="acme")
            assert exc.value.retry_after >= 1.0
            # Another tenant is unaffected.
            service.submit(clean_bytes, tenant="other")
            assert service.drain(timeout=30)
            assert service.registry.value("serve.quota_denied") == 1

    def test_unknown_and_not_ready(self, tmp_path, clean_bytes):
        with _service(tmp_path) as service:
            with pytest.raises(UnknownSubmission):
                service.result("s999999")
            service.pause()
            payload = service.submit(clean_bytes)
            with pytest.raises(NotReady):
                service.report(payload["id"])
            service.resume()
            assert service.drain(timeout=30)
            assert service.report(payload["id"])["verdict"] == "clean"

    def test_chaos_crash_is_retried(self, tmp_path, racy_bytes):
        with _service(
            tmp_path, workers=1, retries=1, crash_every=1
        ) as service:
            payload = service.submit(racy_bytes)
            assert service.drain(timeout=30)
            result = service.result(payload["id"])
            assert result["state"] == "done"
            assert result["verdict"] == "racy"
            assert result["attempts"] == 2
            assert service.registry.value("serve.chaos_armed") == 1

    def test_chaos_crash_without_retries_fails_structurally(
        self, tmp_path, racy_bytes, clean_bytes
    ):
        with _service(
            tmp_path, workers=1, retries=0, crash_every=1
        ) as service:
            # crash_every=1 arms every submission; the scar file makes the
            # fault one-shot *per submission*, so with retries=0 each one
            # fails exactly once.
            doomed = service.submit(racy_bytes)
            assert service.drain(timeout=30)
            result = service.result(doomed["id"])
            assert result["state"] == "failed"
            assert "WorkerCrash" in result["error"]
            assert service.registry.value("serve.failed") == 1

    def test_request_id_roundtrip(self, tmp_path, clean_bytes):
        with _service(tmp_path) as service:
            payload = service.submit(clean_bytes, request_id="req-abc")
            assert payload["request_id"] == "req-abc"
            generated = service.submit(clean_bytes)
            assert generated["request_id"].startswith("r")
            assert service.drain(timeout=30)
            assert service.result(payload["id"])["request_id"] == "req-abc"

    def test_spans_carry_request_ids(self, tmp_path, clean_bytes):
        tracer = Tracer()
        with _service(tmp_path, tracer=tracer) as service:
            service.submit(clean_bytes, request_id="req-1")
            assert service.drain(timeout=30)
        spans = tracer.spans_named("serve.submission")
        assert len(spans) == 1
        assert spans[0].attrs["request_id"] == "req-1"
        assert spans[0].attrs["state"] == "done"

    def test_stop_settles_queued_work(self, tmp_path, clean_bytes):
        service = _service(tmp_path, workers=1).start()
        service.pause()
        payload = service.submit(clean_bytes)
        service.stop()
        result = service.result(payload["id"])
        assert result["state"] == "failed"
        assert "ServiceStopped" in result["error"]


# -- the HTTP daemon --------------------------------------------------------


class TestServeDaemon:
    def test_concurrent_submitters_match_direct_analyze(
        self, tmp_path, racy_bytes, clean_bytes
    ):
        direct_path = tmp_path / "direct.trace"
        direct_path.write_bytes(racy_bytes)
        direct_racy = analyze_trace(str(direct_path)).racy
        assert direct_racy is True
        service = _service(tmp_path, workers=2)
        with ServeDaemon(service) as daemon:
            port = daemon.port
            outcomes = {}
            errors = []

            def submitter(index):
                racy = index % 2 == 0
                body = racy_bytes if racy else clean_bytes
                try:
                    status, payload, _ = _request(
                        port, "POST", "/submit", body=body,
                        headers={"X-Tenant": f"t{index}"},
                    )
                    assert status == 202, payload
                    sid = payload["id"]
                    deadline = time.monotonic() + 30
                    while time.monotonic() < deadline:
                        status, result, _ = _request(
                            port, "GET", f"/result/{sid}"
                        )
                        if result["state"] in ("done", "failed"):
                            outcomes[index] = (racy, result)
                            return
                        time.sleep(0.05)
                    raise AssertionError(f"submission {sid} never finished")
                except Exception as exc:  # noqa: BLE001 - joined below
                    errors.append((index, exc))

            threads = [
                threading.Thread(target=submitter, args=(i,))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            assert len(outcomes) == 4
            for racy, result in outcomes.values():
                assert result["state"] == "done"
                assert result["verdict"] == ("racy" if racy else "clean")
            # /metrics exposes the service and fleet detector counters.
            status, text, _ = _request(port, "GET", "/metrics")
            assert status == 200
            assert "serve_accepted 4" in text
            assert "clean_checks" in text
            status, doc, _ = _request(port, "GET", "/status")
            assert status == 200
            assert doc["submissions"]["done"] == 4
            status, payload, _ = _request(port, "GET", "/healthz")
            assert status == 200 and payload == {"ok": True}

    def test_corrupt_upload_400(self, tmp_path, racy_bytes):
        with ServeDaemon(_service(tmp_path)) as daemon:
            status, payload, _ = _request(
                daemon.port, "POST", "/submit", body=_corrupt(racy_bytes)
            )
            assert status == 400
            assert payload["error"] == "corrupt_trace"

    def test_queue_full_429_with_retry_after(self, tmp_path, clean_bytes):
        service = _service(tmp_path, workers=1, queue_size=1)
        with ServeDaemon(service) as daemon:
            service.pause()
            statuses = []
            for _ in range(6):
                status, payload, headers = _request(
                    daemon.port, "POST", "/submit", body=clean_bytes
                )
                statuses.append(status)
                if status == 429:
                    assert payload["error"] == "queue_full"
                    assert int(headers["Retry-After"]) >= 1
            assert 202 in statuses and 429 in statuses
            service.resume()
            assert service.drain(timeout=30)

    def test_quota_429(self, tmp_path, clean_bytes):
        service = _service(tmp_path, quota_tokens=1)
        with ServeDaemon(service) as daemon:
            status, _, _ = _request(
                daemon.port, "POST", "/submit", body=clean_bytes,
                headers={"X-Tenant": "starved"},
            )
            assert status == 202
            status, payload, headers = _request(
                daemon.port, "POST", "/submit", body=clean_bytes,
                headers={"X-Tenant": "starved"},
            )
            assert status == 429
            assert payload["error"] == "quota_exhausted"
            assert "Retry-After" in headers
            assert service.drain(timeout=30)

    def test_unknown_id_404_and_not_ready_409(self, tmp_path, clean_bytes):
        service = _service(tmp_path)
        with ServeDaemon(service) as daemon:
            status, payload, _ = _request(
                daemon.port, "GET", "/result/s999999"
            )
            assert status == 404
            assert payload["error"] == "unknown_submission"
            service.pause()
            _, accepted, _ = _request(
                daemon.port, "POST", "/submit", body=clean_bytes
            )
            status, payload, _ = _request(
                daemon.port, "GET", f"/report/{accepted['id']}"
            )
            assert status == 409 and payload["error"] == "not_ready"
            service.resume()
            assert service.drain(timeout=30)

    def test_mid_upload_disconnect_leaves_no_submission(
        self, tmp_path, racy_bytes
    ):
        service = _service(tmp_path)
        with ServeDaemon(service) as daemon:
            sk = socket.create_connection(("127.0.0.1", daemon.port))
            sk.sendall(
                b"POST /submit HTTP/1.1\r\nHost: x\r\n"
                + b"Content-Length: %d\r\n\r\n" % (len(racy_bytes) * 2)
                + racy_bytes[:100]
            )
            sk.close()
            assert _wait_for(
                lambda: _counter(service.registry, "serve.client_aborts") >= 1
            )
            assert service.status()["submissions"]["total"] == 0
