"""Tests closing the loop between benchmark specs and measured behaviour."""

import pytest

from repro.workloads import ALL_BENCHMARKS, get_benchmark
from repro.workloads.characterize import characterize, characterize_suite


class TestCharacterize:
    def test_basic_measurement(self):
        c = characterize(get_benchmark("fft"), scale="test")
        assert c.threads == 9  # main + 8 workers
        assert c.shared_accesses > 0
        assert c.private_accesses > 0
        assert c.sync_ops > 0
        assert 0 < c.shared_density < 1
        assert c.footprint_bytes > 0

    def test_canneal_uses_racy_variant(self):
        c = characterize(get_benchmark("canneal"), scale="test")
        assert c.shared_accesses > 0

    def test_measured_density_tracks_spec(self):
        """Measured shared density is within 2x of the spec's analytic
        density (the calibration contract).  Byte-granular pipelines are
        excluded: their buffer traffic is per-byte, which the analytic
        per-item formula deliberately does not capture."""
        for spec in ALL_BENCHMARKS:
            if spec.byte_granular:
                continue
            c = characterize(spec, scale="test")
            analytic = spec.shared_access_density
            measured = c.shared_density
            assert measured == pytest.approx(analytic, rel=1.0), (
                f"{spec.name}: analytic {analytic:.3f} vs measured "
                f"{measured:.3f}"
            )

    def test_lu_measured_densities_highest(self):
        """The Figure-7 ordering holds in measurement, not just in spec."""
        measured = characterize_suite(ALL_BENCHMARKS, scale="test")
        ranked = sorted(
            measured.values(), key=lambda c: c.shared_density, reverse=True
        )
        assert {ranked[0].benchmark, ranked[1].benchmark} == {
            "lu_cb",
            "lu_ncb",
        }

    def test_dedup_byte_writes_dominate(self):
        c = characterize(get_benchmark("dedup"), scale="test")
        assert c.byte_write_fraction > 0.8

    def test_non_byte_benchmarks_avoid_byte_writes(self):
        c = characterize(get_benchmark("fft"), scale="test")
        assert c.byte_write_fraction < 0.05

    def test_wide_fraction_matches_paper_property(self):
        """>=91.9% of shared accesses are 4+ bytes wide on average."""
        widths = [
            characterize(spec, scale="test").wide_fraction
            for spec in ALL_BENCHMARKS
            if not spec.byte_granular
        ]
        assert sum(widths) / len(widths) > 0.88

    def test_sync_count_ordering_for_rollover_roster(self):
        """The five Table-1 benchmarks execute the five highest
        synchronization counts per thread per run — the emergent quantity
        that decides who rolls a bounded clock over."""
        measured = characterize_suite(
            [b for b in ALL_BENCHMARKS if b.style != "lock_free"],
            scale="simsmall",
        )
        ranked = sorted(
            measured.values(),
            key=lambda c: c.sync_ops / c.threads,
            reverse=True,
        )
        top5 = {c.benchmark for c in ranked[:5]}
        assert top5 == {"barnes", "fmm", "radiosity", "facesim", "fluidanimate"}

    def test_footprint_scales_with_input(self):
        small = characterize(get_benchmark("ocean_cp"), scale="test")
        large = characterize(get_benchmark("ocean_cp"), scale="simsmall")
        assert large.footprint_bytes > small.footprint_bytes
