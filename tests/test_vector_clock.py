"""Unit and property tests for epoch-valued vector clocks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.epoch import DEFAULT_LAYOUT, EpochLayout
from repro.core.vector_clock import VectorClock


def vc_from_clocks(clocks, layout=DEFAULT_LAYOUT):
    vc = VectorClock(len(clocks), layout)
    for tid, clock in enumerate(clocks):
        vc.set_clock(tid, clock)
    return vc


clock_lists = st.lists(
    st.integers(min_value=0, max_value=1000), min_size=1, max_size=8
)


class TestBasics:
    def test_initial_clocks_zero(self):
        vc = VectorClock(4)
        assert vc.clocks() == [0, 0, 0, 0]

    def test_elements_carry_tid(self):
        vc = VectorClock(4)
        for tid in range(4):
            assert DEFAULT_LAYOUT.tid(vc.element(tid)) == tid

    def test_increment(self):
        vc = VectorClock(2)
        assert vc.increment(1) == 1
        assert vc.clocks() == [0, 1]

    def test_increment_overflow(self):
        layout = EpochLayout(clock_bits=3, tid_bits=2)
        vc = VectorClock(2, layout)
        for _ in range(layout.clock_max):
            vc.increment(0)
        with pytest.raises(OverflowError):
            vc.increment(0)

    def test_set_clock(self):
        vc = VectorClock(3)
        vc.set_clock(2, 42)
        assert vc.clock_of(2) == 42
        assert DEFAULT_LAYOUT.tid(vc.element(2)) == 2

    def test_size_bounded_by_layout(self):
        layout = EpochLayout(clock_bits=10, tid_bits=2)
        VectorClock(4, layout)
        with pytest.raises(ValueError):
            VectorClock(5, layout)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            VectorClock(0)

    def test_copy_is_independent(self):
        vc = vc_from_clocks([1, 2, 3])
        dup = vc.copy()
        dup.increment(0)
        assert vc.clocks() == [1, 2, 3]
        assert dup.clocks() == [2, 2, 3]

    def test_reset(self):
        vc = vc_from_clocks([5, 6])
        vc.reset()
        assert vc.clocks() == [0, 0]

    def test_equality(self):
        assert vc_from_clocks([1, 2]) == vc_from_clocks([1, 2])
        assert vc_from_clocks([1, 2]) != vc_from_clocks([2, 1])


class TestJoin:
    def test_join_elementwise_max(self):
        a = vc_from_clocks([1, 5, 3])
        b = vc_from_clocks([2, 4, 3])
        a.join(b)
        assert a.clocks() == [2, 5, 3]

    def test_join_size_mismatch(self):
        with pytest.raises(ValueError):
            vc_from_clocks([1]).join(vc_from_clocks([1, 2]))

    def test_join_layout_mismatch(self):
        other = VectorClock(2, EpochLayout(clock_bits=10, tid_bits=2))
        with pytest.raises(ValueError):
            VectorClock(2).join(other)

    def test_join_preserves_tid_bits(self):
        a = vc_from_clocks([0, 0])
        b = vc_from_clocks([7, 9])
        a.join(b)
        for tid in range(2):
            assert DEFAULT_LAYOUT.tid(a.element(tid)) == tid

    @given(x=clock_lists, y=clock_lists)
    def test_join_commutative(self, x, y):
        n = min(len(x), len(y))
        a1 = vc_from_clocks(x[:n])
        b1 = vc_from_clocks(y[:n])
        a2 = vc_from_clocks(y[:n])
        b2 = vc_from_clocks(x[:n])
        a1.join(b1)
        a2.join(b2)
        assert a1 == a2

    @given(x=clock_lists)
    def test_join_idempotent(self, x):
        a = vc_from_clocks(x)
        b = vc_from_clocks(x)
        a.join(b)
        assert a == b

    @given(x=clock_lists, y=clock_lists)
    def test_join_is_upper_bound(self, x, y):
        n = min(len(x), len(y))
        a = vc_from_clocks(x[:n])
        b = vc_from_clocks(y[:n])
        joined = a.copy()
        joined.join(b)
        assert a.happens_before(joined)
        assert b.happens_before(joined)


class TestHappensBefore:
    def test_reflexive(self):
        vc = vc_from_clocks([3, 1])
        assert vc.happens_before(vc)

    def test_strictly_smaller(self):
        assert vc_from_clocks([1, 1]).happens_before(vc_from_clocks([2, 1]))

    def test_incomparable(self):
        a = vc_from_clocks([2, 0])
        b = vc_from_clocks([0, 2])
        assert not a.happens_before(b)
        assert not b.happens_before(a)

    @given(x=clock_lists, y=clock_lists)
    def test_antisymmetry(self, x, y):
        n = min(len(x), len(y))
        a = vc_from_clocks(x[:n])
        b = vc_from_clocks(y[:n])
        if a.happens_before(b) and b.happens_before(a):
            assert a == b
