"""Fault injection and artifact hardening, end to end.

Covers the robustness surface added around the recovery subsystem:

* binary-trace chunk CRCs, wrapped ``truncated/corrupt trace`` errors
  with file/chunk/offset context, and salvage-mode loading;
* checkpoint quarantine of corrupt records and the
  ``checkpoint.corrupt`` counter;
* the runner's deterministic jittered backoff, stuck-worker watchdog,
  and crash/deadlock degradation;
* the seeded :class:`repro.faults.FaultPlan` and the ``chaos`` harness.
"""

import json
import multiprocessing
import random

import pytest

from repro.exec.checkpoint import CheckpointStore
from repro.exec.job import Job, run_job
from repro.exec.runner import JobRunner
from repro.faults import (
    FAULT_KINDS,
    FaultInjected,
    FaultPlan,
    FaultyMonitor,
    deliver,
    inject_checkpoint_truncate,
    inject_trace_bitflip,
    run_chaos,
)
from repro.obs import MetricsRegistry
from repro.obs.context import telemetry_scope
from repro.runtime.trace import (
    TRACE_MAGIC,
    _CHUNK_HEADER,
    StreamingTrace,
    Trace,
    TraceEvent,
)

_FORK_OK = "fork" in multiprocessing.get_all_start_methods()
needs_processes = pytest.mark.skipif(
    not _FORK_OK, reason="needs fork-capable multiprocessing"
)


def small_trace() -> Trace:
    return Trace(
        per_thread={
            1: [TraceEvent("W", 0x1000, 4, False, 2)],
            2: [TraceEvent("R", 0x1000 + 8 * i, 4) for i in range(300)],
        }
    )


def chunk_spans(path):
    """[(header offset, stored length)] for every chunk in the file."""
    data = path.read_bytes()
    offset = len(TRACE_MAGIC) + 1
    spans = []
    while offset < len(data):
        *_, stored_len = _CHUNK_HEADER.unpack_from(data, offset)
        spans.append((offset, stored_len))
        offset += _CHUNK_HEADER.size + stored_len
    return spans


class TestTraceHardening:
    def test_crc_roundtrip(self, tmp_path):
        path = tmp_path / "t.bin"
        trace = small_trace()
        trace.save(path, chunk_events=128)
        loaded = Trace.load(path)
        assert loaded.per_thread == trace.per_thread
        assert loaded.salvaged_chunks == 0

    def test_no_crc_files_still_load(self, tmp_path):
        path = tmp_path / "legacy.bin"
        trace = small_trace()
        trace.save(path, crc=False)
        assert Trace.load(path).per_thread == trace.per_thread

    def test_jsonl_legacy_unaffected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace = small_trace()
        trace.save(path)
        assert Trace.load(path).per_thread == trace.per_thread

    def test_bitflip_detected_with_context(self, tmp_path):
        path = tmp_path / "t.bin"
        small_trace().save(path, chunk_events=128)
        index, at = inject_trace_bitflip(path, random.Random(7))
        with pytest.raises(ValueError) as err:
            Trace.load(path)
        message = str(err.value)
        assert "truncated/corrupt trace" in message
        assert str(path) in message
        assert "chunk" in message and "offset" in message

    def test_bitflip_salvage_skips_one_chunk(self, tmp_path):
        path = tmp_path / "t.bin"
        trace = small_trace()
        trace.save(path, chunk_events=128)
        inject_trace_bitflip(path, random.Random(7))
        registry = MetricsRegistry()
        with telemetry_scope(registry=registry):
            salvaged = Trace.load(path, salvage=True)
        assert salvaged.salvaged_chunks == 1
        assert salvaged.total_events < trace.total_events
        assert registry.snapshot().get("trace.salvaged_chunks") == 1

    def test_truncation_mid_chunk_raises_with_offset(self, tmp_path):
        """Regression: a file cut mid-chunk must name file + chunk offset."""
        path = tmp_path / "t.bin"
        small_trace().save(path, chunk_events=128)
        spans = chunk_spans(path)
        header_off, stored_len = spans[-1]
        data = path.read_bytes()
        cut = header_off + _CHUNK_HEADER.size + stored_len // 2
        path.write_bytes(data[:cut])
        with pytest.raises(ValueError) as err:
            Trace.load(path)
        message = str(err.value)
        assert "truncated/corrupt trace" in message
        assert f"chunk {len(spans) - 1} at offset {header_off}" in message
        # Structural damage is not salvageable either.
        with pytest.raises(ValueError):
            Trace.load(path, salvage=True)

    def test_streaming_salvage_and_strict(self, tmp_path):
        path = tmp_path / "t.bin"
        trace = small_trace()
        trace.save(path, chunk_events=128)
        inject_trace_bitflip(path, random.Random(3))
        lazy = StreamingTrace(path)  # header scan alone does not raise
        with pytest.raises(ValueError, match="truncated/corrupt trace"):
            for tid in lazy.thread_ids():
                list(lazy.iter_events(tid))
        salvaging = StreamingTrace(path, salvage=True)
        assert salvaging.salvaged_chunks == 1
        total = sum(
            len(list(salvaging.iter_events(t))) for t in salvaging.thread_ids()
        )
        assert 0 < total < trace.total_events


class TestCheckpointQuarantine:
    def job(self):
        return Job(fn="tests._runner_jobs:double", config={"x": 2})

    def test_corrupt_record_quarantined_and_counted(self, tmp_path):
        store = CheckpointStore(tmp_path)
        job = self.job()
        store.store(job, {"v": 4})
        inject_checkpoint_truncate(store.path(job.job_id), random.Random(0))
        registry = MetricsRegistry()
        with telemetry_scope(registry=registry):
            assert store.load(job) is None
        assert store.corrupt_records == 1
        assert store.quarantined() == 1
        qpath = store.quarantine_path(job.job_id)
        assert qpath.exists()
        assert "JSON" in qpath.with_suffix(".reason").read_text()
        assert not store.path(job.job_id).exists()
        assert registry.snapshot().get("checkpoint.corrupt") == 1

    def test_stale_record_is_plain_miss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        job = self.job()
        store.store(job, {"v": 4})
        path = store.path(job.job_id)
        record = json.loads(path.read_text())
        record["library_version"] = "0.0.0-other"
        path.write_text(json.dumps(record))
        assert store.load(job) is None
        assert store.corrupt_records == 0
        assert path.exists()  # stays in place to be overwritten

    def test_runner_surfaces_corrupt_checkpoints(self, tmp_path):
        store = CheckpointStore(tmp_path)
        job = self.job()
        store.store(job, {"v": 4})
        store.path(job.job_id).write_text("torn{")
        runner = JobRunner(store=store)
        results = runner.run([job])
        assert results[0].ok and not results[0].cached
        assert runner.stats["corrupt_checkpoints"] == 1
        assert "corrupt_checkpoints=1" in runner.summary()


class TestBackoff:
    def test_deterministic_jitter_and_cap(self):
        runner = JobRunner(backoff=0.25, max_backoff=2.0, backoff_jitter=0.5)
        delays = [runner._backoff_delay(i, "job-a") for i in range(1, 10)]
        again = [runner._backoff_delay(i, "job-a") for i in range(1, 10)]
        assert delays == again
        assert all(0.0 <= d <= 2.0 for d in delays)
        assert delays != [runner._backoff_delay(i, "job-b") for i in range(1, 10)]

    def test_serial_and_parallel_runners_agree(self):
        serial = JobRunner(workers=1, backoff=0.1, backoff_jitter=0.4)
        parallel = JobRunner(workers=4, backoff=0.1, backoff_jitter=0.4)
        for attempt in (1, 2, 3):
            assert serial._backoff_delay(attempt, "xyz") == parallel._backoff_delay(
                attempt, "xyz"
            )

    def test_no_jitter_keeps_exact_exponential(self):
        runner = JobRunner(backoff=0.25)
        assert [runner._backoff_delay(i) for i in (1, 2, 3)] == [0.25, 0.5, 1.0]


class TestFaultPlan:
    def test_parse_and_validation(self):
        plan = FaultPlan.parse(3, "trace-bitflip, worker-crash")
        assert plan.kinds == ("trace-bitflip", "worker-crash")
        with pytest.raises(ValueError, match="unknown fault"):
            FaultPlan.parse(3, "gremlins")

    def test_same_seed_same_targets(self):
        labels = ["a", "b", "c", "d"]
        p1 = FaultPlan.parse(9, "worker-crash,worker-hang")
        p2 = FaultPlan.parse(9, "worker-crash,worker-hang")
        assert p1.assign_jobs(labels) == p2.assign_jobs(labels)
        assert p1.rng("x").random() == p2.rng("x").random()
        assert len(set(p1.assign_jobs(labels).values())) == 2

    def test_all_kinds_classified(self):
        for kind in FAULT_KINDS:
            plan = FaultPlan.parse(0, [kind])
            assert (plan.artifact_kinds or plan.job_kinds
                    or plan.service_kinds)


class TestDelivery:
    def test_monitor_raise_spec_is_one_shot(self, tmp_path):
        spec = {"kind": "monitor-raise", "scar": str(tmp_path / "s.scar")}
        assert deliver(dict(spec), "job") == spec  # fires: forwarded
        assert deliver(dict(spec), "job") is None  # spent: clean retry

    def test_crash_in_main_process_raises_not_exits(self, tmp_path):
        spec = {"kind": "worker-crash", "scar": str(tmp_path / "c.scar")}
        with pytest.raises(FaultInjected):
            deliver(spec, "job")

    def test_faulty_monitor_raises_after_n(self):
        from repro.clean import run_clean

        from .test_recovery import locked_increment_program

        with pytest.raises(FaultInjected, match="monitor failure"):
            run_clean(
                locked_increment_program(),
                extra_monitors=[FaultyMonitor(after=3)],
            )

    def test_run_job_delivers_inject_fault(self, tmp_path):
        scar = tmp_path / "j.scar"
        job = Job(
            fn="tests._runner_jobs:double",
            config={
                "x": 1,
                "inject_fault": {"kind": "worker-crash", "scar": str(scar)},
            },
        )
        with pytest.raises(FaultInjected):  # main process: raise, not exit
            run_job(job)
        assert scar.exists()
        assert run_job(job) == {"x": 1, "doubled": 2}  # spent fault


@needs_processes
class TestRunnerFaults:
    def test_worker_crash_degrades_to_failed_row(self):
        runner = JobRunner(workers=2, retries=0)
        job = Job(fn="tests._runner_jobs:hard_exit", config={"code": 13})
        results = runner.run([job])
        assert results[0].status == "failed"
        assert "WorkerCrash" in results[0].error

    def test_watchdog_reaps_stuck_worker(self):
        runner = JobRunner(workers=2, retries=0, watchdog=1.0)
        job = Job(fn="tests._runner_jobs:wedged_sleeper", config={"seconds": 30})
        results = runner.run([job])
        assert results[0].status == "failed"
        assert "Stuck" in results[0].error
        assert runner.stats["stuck"] == 1

    def test_worker_deadlock_degrades_to_failed_row(self):
        runner = JobRunner(workers=2, retries=0)
        job = Job(fn="tests._runner_jobs:deadlock_job", config={})
        results = runner.run([job])
        assert results[0].status == "failed"
        assert "DeadlockError" in results[0].error


@needs_processes
class TestChaos:
    def test_chaos_smoke(self, tmp_path):
        registry = MetricsRegistry()
        report = run_chaos(
            seed=5,
            faults="trace-bitflip,checkpoint-truncate,worker-crash",
            workdir=tmp_path,
            watchdog=2.0,
            registry=registry,
        )
        assert report["ok"]
        assert report["deterministic"]
        kinds = {c["fault"] for c in report["checks"]}
        assert kinds == {"trace-bitflip", "checkpoint-truncate", "worker-crash"}
        assert all(c["detected"] and c["recovered"] for c in report["checks"])
        snapshot = registry.snapshot()
        assert snapshot.get("faults.trace_bitflip") == 1
        assert snapshot.get("faults.worker_crash") == 2  # once per pass
        assert snapshot.get("trace.salvaged_chunks") == 1
        assert snapshot.get("checkpoint.corrupt") == 1
        assert (tmp_path / "chaos_report.json").exists()

    def test_chaos_cli_exit_zero(self, tmp_path):
        from repro.__main__ import main

        code = main(
            [
                "chaos",
                "--seed",
                "5",
                "--faults",
                "trace-bitflip,checkpoint-truncate",
                "--workdir",
                str(tmp_path),
                "--json",
            ]
        )
        assert code == 0
