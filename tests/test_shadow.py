"""Unit tests for the epoch shadow-memory stores."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.shadow import DenseShadow, SparseShadow


@pytest.fixture(params=["sparse", "dense"])
def shadow(request):
    if request.param == "sparse":
        return SparseShadow()
    return DenseShadow(base=0, size=4096)


class TestCommonBehaviour:
    def test_default_epoch_is_zero(self, shadow):
        assert shadow.load(100) == 0

    def test_store_load(self, shadow):
        shadow.store(10, 0xABC)
        assert shadow.load(10) == 0xABC

    def test_store_range_uniform(self, shadow):
        shadow.store_range(64, 8, 7)
        assert shadow.load_range(64, 8) == [7] * 8

    def test_load_range_mixed(self, shadow):
        shadow.store(0, 1)
        shadow.store(2, 3)
        assert shadow.load_range(0, 4) == [1, 0, 3, 0]

    def test_cas_success(self, shadow):
        shadow.store(5, 10)
        assert shadow.compare_and_swap(5, 10, 20)
        assert shadow.load(5) == 20

    def test_cas_failure_leaves_value(self, shadow):
        shadow.store(5, 10)
        assert not shadow.compare_and_swap(5, 999, 20)
        assert shadow.load(5) == 10

    def test_cas_on_untouched_location(self, shadow):
        assert shadow.compare_and_swap(123, 0, 42)
        assert shadow.load(123) == 42

    def test_reset_clears_everything(self, shadow):
        shadow.store_range(0, 16, 9)
        shadow.reset()
        assert shadow.load_range(0, 16) == [0] * 16
        assert shadow.resets == 1

    def test_touched_bytes(self, shadow):
        shadow.store(1, 5)
        shadow.store(2, 5)
        shadow.store(1, 6)  # overwrite, not a new byte
        assert shadow.touched_bytes == 2

    def test_metadata_footprint_is_4x(self, shadow):
        shadow.store_range(0, 10, 3)
        assert shadow.metadata_bytes == 40

    def test_items_roundtrip(self, shadow):
        shadow.store(3, 7)
        shadow.store(9, 8)
        assert dict(shadow.items()) == {3: 7, 9: 8}


class TestDenseBounds:
    def test_out_of_window_rejected(self):
        shadow = DenseShadow(base=0x1000, size=64)
        with pytest.raises(IndexError):
            shadow.load(0xFFF)
        with pytest.raises(IndexError):
            shadow.load(0x1040)

    def test_range_crossing_boundary_rejected(self):
        shadow = DenseShadow(base=0, size=8)
        with pytest.raises(IndexError):
            shadow.load_range(4, 8)

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            DenseShadow(base=0, size=0)

    def test_base_offset_addressing(self):
        shadow = DenseShadow(base=0x4000, size=32)
        shadow.store(0x4010, 77)
        assert shadow.load(0x4010) == 77


@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=255),
            st.integers(min_value=0, max_value=2**32 - 1),
        ),
        max_size=50,
    )
)
def test_sparse_and_dense_agree(writes):
    """Both stores are observationally equivalent on any write sequence."""
    sparse = SparseShadow()
    dense = DenseShadow(base=0, size=256)
    for address, epoch in writes:
        sparse.store(address, epoch)
        dense.store(address, epoch)
    for address in range(256):
        assert sparse.load(address) == dense.load(address)
