"""Tests for the software-CLEAN runner and cost model."""

import pytest

from repro.core.detector import AccessStats
from repro.core.epoch import EpochLayout
from repro.swclean import (
    DEFAULT_PARAMS,
    DetectionCost,
    SoftwareCostParams,
    SyncCost,
    run_software_clean,
)
from repro.workloads import get_benchmark


class TestDetectionCost:
    def test_empty_stats_cost_zero(self):
        cost = DetectionCost.from_stats(AccessStats(), DEFAULT_PARAMS, True)
        assert cost.added_instructions == 0.0

    def test_cost_grows_with_accesses(self):
        small = AccessStats(reads=10, writes=5, epoch_comparisons=15)
        large = AccessStats(reads=100, writes=50, epoch_comparisons=150)
        c_small = DetectionCost.from_stats(small, DEFAULT_PARAMS, True)
        c_large = DetectionCost.from_stats(large, DEFAULT_PARAMS, True)
        assert c_large.added_instructions > c_small.added_instructions

    def test_scalar_mode_prices_per_byte_comparisons(self):
        """Without vectorization the detector does one comparison per
        byte; with it, one per (uniform) access — the cost model prices
        whatever the detector actually counted."""
        vec_stats = AccessStats(
            reads=10, writes=0, epoch_comparisons=10,
            multibyte_accesses=10, multibyte_uniform_epoch=10,
        )
        scalar_stats = AccessStats(
            reads=10, writes=0, epoch_comparisons=80,
            multibyte_accesses=10, multibyte_uniform_epoch=10,
        )
        vec = DetectionCost.from_stats(vec_stats, DEFAULT_PARAMS, True)
        scalar = DetectionCost.from_stats(scalar_stats, DEFAULT_PARAMS, False)
        assert scalar.added_instructions > vec.added_instructions

    def test_wide_cas_batches_updates(self):
        stats = AccessStats(reads=0, writes=10, epoch_comparisons=10,
                            epoch_updates=40)
        vec = DetectionCost.from_stats(stats, DEFAULT_PARAMS, True)
        scalar = DetectionCost.from_stats(stats, DEFAULT_PARAMS, False)
        # vectorized: ceil(40/4)=10 CAS ops; scalar: 40 CAS ops.
        assert scalar.added_instructions - vec.added_instructions == (
            pytest.approx(30 * DEFAULT_PARAMS.cas_cost)
        )


class TestSyncCost:
    def test_blocking_sync_gets_bonus(self):
        common = dict(
            params=DEFAULT_PARAMS, baseline=1000.0, sync_commits=10,
            compute_instructions=500.0, imbalance=0.0,
            skipped_counter_work=0.0, n_threads=8,
        )
        normal = SyncCost.compute(blocking_sync=False, **common)
        spinning = SyncCost.compute(blocking_sync=True, **common)
        assert spinning.added_instructions < normal.added_instructions

    def test_imbalance_adds_waiting(self):
        common = dict(
            params=DEFAULT_PARAMS, baseline=1000.0, sync_commits=10,
            compute_instructions=500.0, skipped_counter_work=0.0,
            blocking_sync=False, n_threads=8,
        )
        balanced = SyncCost.compute(imbalance=0.0, **common)
        skewed = SyncCost.compute(imbalance=0.8, **common)
        assert skewed.added_instructions > balanced.added_instructions

    def test_counter_imprecision_adds_waiting(self):
        common = dict(
            params=DEFAULT_PARAMS, baseline=1000.0, sync_commits=10,
            compute_instructions=500.0, imbalance=0.0,
            blocking_sync=False, n_threads=8,
        )
        precise = SyncCost.compute(skipped_counter_work=0.0, **common)
        sloppy = SyncCost.compute(skipped_counter_work=400.0, **common)
        assert sloppy.added_instructions > precise.added_instructions


class TestRunner:
    def test_run_produces_consistent_slowdowns(self):
        run = run_software_clean(get_benchmark("fft"), scale="test")
        assert run.t0 > 0
        assert run.slowdown_detection > 1.0
        assert run.slowdown_full > run.slowdown_detection * 0.9
        assert run.stats.accesses > 0

    def test_full_composes_detection_and_sync(self):
        run = run_software_clean(get_benchmark("barnes"), scale="test")
        assert run.slowdown_full == pytest.approx(
            run.slowdown_detection * run.slowdown_detsync, rel=1e-6
        )

    def test_vectorization_reduces_detection_cost(self):
        spec = get_benchmark("lu_cb")
        vec = run_software_clean(spec, scale="test", vectorized=True)
        scalar = run_software_clean(spec, scale="test", vectorized=False)
        assert vec.slowdown_detection < scalar.slowdown_detection

    def test_streamcluster_sync_speedup(self):
        """Section 6.2.3: spinning deterministic synchronization speeds
        streamcluster up relative to its blocking Pthread build."""
        run = run_software_clean(get_benchmark("streamcluster"), scale="test")
        assert run.slowdown_detsync < 1.0

    def test_narrow_clock_causes_rollovers(self):
        narrow = EpochLayout(clock_bits=4, tid_bits=5)
        run = run_software_clean(
            get_benchmark("radiosity"), scale="test",
            layout=narrow, rollover_slack=2,
        )
        assert run.rollovers > 0
        assert run.rollovers_per_second > 0

    def test_default_clock_never_rolls_over(self):
        run = run_software_clean(get_benchmark("radiosity"), scale="test")
        assert run.rollovers == 0

    def test_wide_access_fraction_matches_paper(self):
        """>91.9% of shared accesses are 4+ bytes (Section 6.2.3)."""
        run = run_software_clean(get_benchmark("fft"), scale="test")
        assert run.stats.fraction_wide > 0.85

    def test_uniform_epoch_fraction_high(self):
        """>99.7% of multi-byte accesses have uniform epochs (paper);
        our models reach the high nineties."""
        run = run_software_clean(get_benchmark("fft"), scale="test")
        assert run.stats.fraction_uniform_epoch > 0.95

    def test_runs_are_reproducible(self):
        a = run_software_clean(get_benchmark("fmm"), scale="test", seed=5)
        b = run_software_clean(get_benchmark("fmm"), scale="test", seed=5)
        assert a.t_full == b.t_full
        assert a.result.fingerprint() == b.result.fingerprint()
