"""Tests for the hardware simulation stack (caches, MESI, metadata,
race-check unit, trace-driven simulator)."""

import pytest

from repro.hardware import (
    LINE_SIZE,
    AccessClass,
    Cache,
    Latencies,
    MemoryHierarchy,
    MetadataLayout,
    MulticoreSim,
    RaceCheckUnit,
    SimConfig,
    simulate_trace,
)
from repro.hardware.cache import MESI_E, MESI_M, MESI_S
from repro.hardware.metadata import EPOCHS_BASE, EXPANDED_BASE
from repro.runtime.trace import READ, SYNC, WRITE, Trace, TraceEvent


class TestCache:
    def test_hit_after_insert(self):
        cache = Cache("c", 8 * 1024, 8)
        cache.insert(0x1000, MESI_E)
        assert cache.lookup(0x1000) == MESI_E
        assert cache.hits == 1

    def test_miss_counted(self):
        cache = Cache("c", 8 * 1024, 8)
        assert cache.lookup(0x1000) is None
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = Cache("c", 2 * 64 * 4, 2)  # 4 sets, 2-way
        lines = [i * 4 * 64 for i in range(3)]  # all map to set 0
        cache.insert(lines[0], MESI_E)
        cache.insert(lines[1], MESI_E)
        cache.lookup(lines[0])  # make line 0 MRU
        victim = cache.insert(lines[2], MESI_E)
        assert victim == (lines[1], MESI_E)

    def test_set_indexing_uses_line_number(self):
        """Regression: adjacent lines must land in adjacent sets."""
        cache = Cache("c", 64 * 1024, 8)
        sets = {(line // 64) % cache.n_sets for line in range(0, 64 * 64, 64)}
        assert len(sets) == 64  # 64 consecutive lines -> 64 distinct sets
        for i in range(9):
            cache.insert(i * 64, MESI_E)
        assert cache.evictions == 0

    def test_invalidate(self):
        cache = Cache("c", 8 * 1024, 8)
        cache.insert(0, MESI_S)
        assert cache.invalidate(0)
        assert not cache.invalidate(0)
        assert cache.probe(0) is None

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache("c", 1000, 3)


class TestHierarchy:
    def make(self):
        return MemoryHierarchy(n_cores=2)

    def test_first_access_is_memory(self):
        h = self.make()
        assert h.access(0, 0x1000, 8, False) == Latencies().memory

    def test_second_access_is_l1(self):
        h = self.make()
        h.access(0, 0x1000, 8, False)
        assert h.access(0, 0x1000, 8, False) == Latencies().l1_hit

    def test_remote_hit(self):
        h = self.make()
        h.access(0, 0x1000, 8, False)
        assert h.access(1, 0x1000, 8, False) == Latencies().l2_remote

    def test_write_invalidates_sharers(self):
        h = self.make()
        h.access(0, 0x1000, 8, False)
        h.access(1, 0x1000, 8, False)
        h.access(0, 0x1000, 8, True)  # write: invalidates core 1
        assert h.stats.invalidations == 1
        assert h.access(1, 0x1000, 8, False) == Latencies().l2_remote

    def test_write_hit_in_exclusive_is_fast(self):
        h = self.make()
        h.access(0, 0x1000, 8, False)  # E
        assert h.access(0, 0x1000, 8, True) == Latencies().l1_hit
        assert h.l1[0].probe(0x1000) == MESI_M

    def test_upgrade_from_shared(self):
        h = self.make()
        h.access(0, 0x1000, 8, False)
        h.access(1, 0x1000, 8, False)  # both S
        latency = h.access(0, 0x1000, 8, True)
        assert latency == Latencies().l2_local
        assert h.stats.upgrades == 1

    def test_multi_line_access_pays_each_line(self):
        h = self.make()
        latency = h.access(0, LINE_SIZE - 4, 8, False)  # spans 2 lines
        assert latency == 2 * Latencies().memory

    def test_invalidation_callback_carries_byte_range(self):
        h = self.make()
        seen = []
        h.on_invalidate = lambda core, line, lo, hi: seen.append(
            (core, line, lo, hi)
        )
        h.access(0, 0x1000, 8, False)
        h.access(1, 0x1000, 8, False)
        h.access(0, 0x1008, 4, True)
        assert seen == [(1, 0x1000, 8, 12)]


class TestMetadataLayout:
    def test_fresh_lines_are_compact(self):
        m = MetadataLayout("clean")
        assert not m.is_expanded(0x1000)

    def test_full_group_write_stays_compact(self):
        m = MetadataLayout("clean")
        plan = m.apply_write(0x1000, 8, epoch=5)
        assert not plan.expansion
        assert m.epochs_for(0x1000, 8) == [5] * 8

    def test_partial_write_same_epoch_stays_compact(self):
        m = MetadataLayout("clean")
        m.apply_write(0x1000, 4, epoch=5)
        plan = m.apply_write(0x1001, 1, epoch=5)
        assert not plan.expansion

    def test_partial_write_new_epoch_expands(self):
        """Section 5.3: a byte write with a different epoch forces the
        per-byte representation."""
        m = MetadataLayout("clean")
        m.apply_write(0x1000, 4, epoch=5)
        plan = m.apply_write(0x1001, 1, epoch=9)
        assert plan.expansion
        assert m.is_expanded(0x1000)
        assert m.epochs_for(0x1000, 4) == [5, 9, 5, 5]

    def test_expansion_preserves_group_epochs(self):
        m = MetadataLayout("clean")
        m.apply_write(0x1000, 4, epoch=5)
        m.apply_write(0x1004, 4, epoch=7)
        m.apply_write(0x1001, 1, epoch=9)
        assert m.epochs_for(0x1004, 4) == [7, 7, 7, 7]

    def test_expanded_plan_flags_miscalculation(self):
        m = MetadataLayout("clean")
        m.apply_write(0x1000, 4, epoch=5)
        m.apply_write(0x1001, 1, epoch=9)
        plan = m.plan_read_check(0x1000, 4)
        assert plan.expanded
        assert plan.miscalculated

    def test_compact_plan_reads_one_range(self):
        m = MetadataLayout("clean")
        plan = m.plan_read_check(0x1000, 8)
        assert len(plan.reads) == 1
        address, size = plan.reads[0]
        assert address >= EPOCHS_BASE
        assert size == 8  # 2 groups x 4-byte epochs

    def test_expanded_addresses_in_expanded_region(self):
        m = MetadataLayout("clean")
        assert m.expanded_address(0x1000) >= EXPANDED_BASE

    def test_flat_modes_never_expand(self):
        for mode in ("epoch1", "epoch4"):
            m = MetadataLayout(mode)
            m.apply_write(0x1000, 4, epoch=5)
            plan = m.apply_write(0x1001, 1, epoch=9)
            assert not plan.expansion
            assert m.epochs_for(0x1000, 4) == [5, 9, 5, 5]

    def test_epoch4_metadata_is_4x(self):
        m = MetadataLayout("epoch4")
        plan = m.plan_read_check(0x1000, 8)
        assert plan.reads == [(m.flat_address(0x1000), 32)]

    def test_epoch1_metadata_is_1x(self):
        m = MetadataLayout("epoch1")
        plan = m.plan_read_check(0x1000, 8)
        assert plan.reads == [(m.flat_address(0x1000), 8)]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            MetadataLayout("epoch2")


class TestRaceCheckUnit:
    def make(self):
        hierarchy = MemoryHierarchy(n_cores=2)
        metadata = MetadataLayout("clean")
        unit = RaceCheckUnit(hierarchy, metadata)
        unit.set_thread(0, tid=1, clock=1)
        unit.set_thread(1, tid=2, clock=1)
        return unit

    def test_private_access_free(self):
        unit = self.make()
        outcome = unit.check(0, 0x1000, 8, is_write=False, private=True)
        assert outcome.access_class == AccessClass.PRIVATE
        assert outcome.check_latency == 0

    def test_first_write_updates(self):
        """A first write to virgin memory needs no VC element (a zero
        clock cannot race) — it is a plain epoch update."""
        unit = self.make()
        outcome = unit.check(0, 0x1000, 8, is_write=True, private=False)
        assert outcome.access_class == AccessClass.UPDATE

    def test_rewrite_same_epoch_is_fast(self):
        unit = self.make()
        unit.check(0, 0x1000, 8, is_write=True, private=False)
        outcome = unit.check(0, 0x1000, 8, is_write=True, private=False)
        assert outcome.access_class == AccessClass.FAST

    def test_own_read_is_fast(self):
        unit = self.make()
        unit.check(0, 0x1000, 8, is_write=True, private=False)
        outcome = unit.check(0, 0x1000, 8, is_write=False, private=False)
        assert outcome.access_class == AccessClass.FAST

    def test_foreign_read_loads_vc(self):
        unit = self.make()
        unit.check(0, 0x1000, 8, is_write=True, private=False)
        outcome = unit.check(1, 0x1000, 8, is_write=False, private=False)
        assert outcome.access_class == AccessClass.VC_LOAD

    def test_write_after_own_sync_updates(self):
        unit = self.make()
        unit.check(0, 0x1000, 8, is_write=True, private=False)
        unit.set_thread(0, tid=1, clock=2)  # synchronization advanced
        outcome = unit.check(0, 0x1000, 8, is_write=True, private=False)
        assert outcome.access_class == AccessClass.UPDATE

    def test_byte_write_by_other_thread_expands(self):
        unit = self.make()
        unit.check(0, 0x1000, 8, is_write=True, private=False)
        outcome = unit.check(1, 0x1001, 1, is_write=True, private=False)
        assert outcome.access_class == AccessClass.EXPAND
        assert unit.metadata.is_expanded(0x1000)

    def test_stats_accumulate(self):
        unit = self.make()
        unit.check(0, 0x1000, 8, is_write=True, private=False)
        unit.check(0, 0x1000, 8, is_write=False, private=False)
        unit.check(0, 0x2000, 8, is_write=False, private=True)
        stats = unit.stats
        assert stats.total == 3
        assert stats.by_class[AccessClass.PRIVATE] == 1
        assert 0 < stats.quick_fraction <= 1


def make_trace(events_by_tid):
    return Trace(per_thread=events_by_tid)


class TestSimulator:
    def simple_trace(self):
        return make_trace(
            {
                1: [
                    TraceEvent(WRITE, 0x1000, 8, gap=10),
                    TraceEvent(READ, 0x1000, 8, gap=5),
                    TraceEvent(SYNC, gap=2, sync_name="Release"),
                    TraceEvent(WRITE, 0x1000, 8, gap=1),
                ],
                2: [
                    TraceEvent(READ, 0x2000, 8, gap=8),
                    TraceEvent(WRITE, 0x2000, 8, gap=0),
                ],
            }
        )

    def test_runs_to_completion(self):
        result = simulate_trace(self.simple_trace(), SimConfig(detection=False))
        assert result.cycles > 0
        assert result.data_accesses == 5

    def test_detection_not_cheaper(self):
        trace = self.simple_trace()
        base = simulate_trace(trace, SimConfig(detection=False))
        det = simulate_trace(trace, SimConfig(detection=True))
        assert det.cycles >= base.cycles
        assert det.check_stats is not None
        assert det.check_stats.total == 5

    def test_warmup_reduces_cycles(self):
        trace = self.simple_trace()
        sim_cold = MulticoreSim(SimConfig(detection=False))
        cold = sim_cold.run(trace, warmup=False)
        sim_warm = MulticoreSim(SimConfig(detection=False))
        warm = sim_warm.run(trace, warmup=True)
        assert warm.cycles < cold.cycles

    def test_sync_advances_thread_clock(self):
        """The write after the sync needs an epoch update (new clock)."""
        result = simulate_trace(self.simple_trace(), SimConfig(detection=True))
        stats = result.check_stats
        assert stats.by_class[AccessClass.UPDATE] >= 1

    def test_private_events_skip_checks(self):
        trace = make_trace(
            {1: [TraceEvent(READ, 0x1000, 8, private=True, gap=0)]}
        )
        result = simulate_trace(trace, SimConfig(detection=True))
        assert result.check_stats.by_class[AccessClass.PRIVATE] == 1

    def test_deterministic_across_runs(self):
        trace = self.simple_trace()
        a = simulate_trace(trace, SimConfig(detection=True))
        b = simulate_trace(trace, SimConfig(detection=True))
        assert a.cycles == b.cycles

    def test_empty_trace(self):
        result = simulate_trace(make_trace({}), SimConfig(detection=False))
        assert result.cycles == 0
