"""Race forensics: the timeline recorder and its exporters.

Covers the flight-recorder semantics (SFR segments, happens-before
edges, rollback annotation), the three export formats (Chrome trace,
HB graph, HTML), the determinism contract (byte-identical artifacts
between serial, parallel and cache-replayed runs), and the spans-JSONL
origin normalization that makes worker spans orderable in the parent.
"""

import json

import pytest

from repro.clean import run_clean
from repro.diagnostics import AccessSite, RaceReport
from repro.exec.checkpoint import CheckpointStore
from repro.exec.job import Job, run_job_traced
from repro.exec.runner import JobRunner
from repro.obs import (
    SPANS_FORMAT_VERSION,
    TIMELINE_FORMAT_VERSION,
    JsonlExporter,
    TimelineRecorder,
    TimelineSink,
    Tracer,
    build_hb_graph,
    chrome_trace,
    hb_graph_dot,
    read_jsonl,
    render_html,
    telemetry_scope,
    validate_chrome_trace,
    write_forensics,
)
from repro.runtime import (
    Acquire,
    Join,
    Lock,
    Program,
    Read,
    Release,
    Spawn,
    Write,
)
from repro.workloads import build_program
from repro.workloads.suite import get_benchmark

# dedup@racy with seed 0 races deterministically under the default
# RoundRobin + Kendo policy; lu_ncb is its race-free counterpart.
RACY = ("dedup", True, 0)
CLEAN = ("lu_ncb", False, 0)


def _record(name, racy, seed, **kwargs):
    recorder = TimelineRecorder(label=name)
    program = build_program(
        get_benchmark(name), scale="test", racy=racy, seed=seed
    )
    result = run_clean(program, timeline=recorder, **kwargs)
    return recorder.to_payload(), result


@pytest.fixture(scope="module")
def racy_payload():
    payload, result = _record(*RACY)
    assert result.race is not None
    return payload


@pytest.fixture(scope="module")
def clean_payload():
    payload, result = _record(*CLEAN)
    assert result.race is None
    return payload


# ---------------------------------------------------------------------------
# recorder semantics


class TestRecorder:
    def test_locked_counter_program(self):
        """Hand-built program: 2 children under one lock -> fork, join
        and release->acquire edges with the documented region indices."""
        lock = Lock("L")

        def worker(ctx, base):
            yield Acquire(lock)
            v = yield Read(base, 8)
            yield Write(base, 8, v + 1)
            yield Release(lock)

        def main(ctx):
            base = ctx.alloc(8)
            kids = []
            for _ in range(2):
                kids.append((yield Spawn(worker, (base,))))
            for k in kids:
                yield Join(k)

        recorder = TimelineRecorder(label="locked")
        result = run_clean(Program(main), timeline=recorder)
        assert result.race is None
        payload = recorder.to_payload()
        assert payload["format"] == TIMELINE_FORMAT_VERSION
        assert [t["tid"] for t in payload["threads"]] == [0, 1, 2]
        kinds = {e["kind"] for e in payload["edges"]}
        assert {"fork", "join", "lock"} <= kinds
        forks = [e for e in payload["edges"] if e["kind"] == "fork"]
        assert [(e["src"][0], e["dst"][0], e["dst"][1]) for e in forks] == [
            (0, 1, 0),
            (0, 2, 0),
        ]
        # The second acquirer's edge comes from the first releaser.
        locks = [e for e in payload["edges"] if e["kind"] == "lock"]
        assert locks and all(e["src"][0] != e["dst"][0] for e in locks)
        # Logical timestamps strictly increase through the event list.
        lts = [e["lt"] for e in payload["events"]]
        assert lts == sorted(lts) and len(set(lts)) == len(lts)
        # Every closed segment is well-formed.
        for seg in payload["segments"]:
            assert seg["start"] <= seg["end"]
            assert seg["aborted"] is False

    def test_segments_cover_every_thread(self, racy_payload):
        seg_tids = {s["tid"] for s in racy_payload["segments"]}
        assert seg_tids == {t["tid"] for t in racy_payload["threads"]}

    def test_race_event_and_report_attached(self, racy_payload):
        (race_event,) = [
            e for e in racy_payload["events"] if e["kind"] == "race"
        ]
        assert race_event["lt"] == max(e["lt"] for e in racy_payload["events"])
        report = racy_payload["race_report"]
        assert report is not None
        assert report["kind"] == racy_payload["race"]["kind"]
        assert report["current"]["tid"] == racy_payload["race"]["accessing_tid"]
        assert "race on address" in report["text"]

    def test_rollback_marks_aborted_segment(self):
        payload, result = _record(*RACY, recovery="rollback-retry")
        assert result.race is None  # recovered
        assert payload["recovery"]["races"] >= 1
        aborted = [s for s in payload["segments"] if s["aborted"]]
        assert aborted
        tid = aborted[0]["tid"]
        retried = [
            s
            for s in payload["segments"]
            if s["tid"] == tid
            and s["region"] == aborted[0]["region"]
            and not s["aborted"]
        ]
        assert retried and retried[0]["retry"] >= 1
        assert any(e["kind"] == "rollback" for e in payload["events"])

    def test_payload_is_json_safe(self, racy_payload):
        # Tuples would survive the worker pipe but not the checkpoint
        # JSON round trip; the payload must already be tuple-free.
        roundtrip = json.loads(json.dumps(racy_payload))
        assert roundtrip == racy_payload


# ---------------------------------------------------------------------------
# Chrome trace export


class TestChromeTrace:
    def test_valid_and_loadable_shape(self, racy_payload):
        trace = chrome_trace(racy_payload)
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i", "s", "f"} <= phases
        # One duration event per closed SFR segment.
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == len(racy_payload["segments"])
        assert all(e["dur"] >= 0 and e["cat"] == "sfr" for e in xs)
        # The race shows up as a global-scoped instant event.
        assert any(
            e["ph"] == "i" and e.get("cat") == "race" for e in events
        )
        # Flow events pair up s/f under shared ids, one per HB edge.
        starts = [e for e in events if e["ph"] == "s"]
        ends = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(ends) == len(racy_payload["edges"])

    def test_validator_catches_damage(self, clean_payload):
        trace = chrome_trace(clean_payload)
        assert validate_chrome_trace(trace) == []
        broken = json.loads(json.dumps(trace))
        del broken["traceEvents"][5]["ts"]
        assert validate_chrome_trace(broken)
        unpaired = json.loads(json.dumps(trace))
        unpaired["traceEvents"] = [
            e for e in unpaired["traceEvents"] if e["ph"] != "f"
        ]
        assert any("flow" in err for err in validate_chrome_trace(unpaired))
        assert validate_chrome_trace({"traceEvents": []})
        assert validate_chrome_trace([])

    def test_rejects_future_timeline_format(self, clean_payload):
        future = dict(clean_payload, format=TIMELINE_FORMAT_VERSION + 1)
        with pytest.raises(ValueError):
            chrome_trace(future)
        with pytest.raises(ValueError):
            build_hb_graph(future)
        with pytest.raises(ValueError):
            render_html(future)


# ---------------------------------------------------------------------------
# happens-before graph


class TestHbGraph:
    def test_racy_pair_has_no_hb_path(self, racy_payload):
        graph = build_hb_graph(racy_payload)
        pair = graph["pair"]
        assert pair is not None and pair["approx"] is False
        report = racy_payload["race_report"]
        assert pair["current"] == [
            report["current"]["tid"],
            report["current"]["region_index"],
        ]
        assert pair["previous"] == [
            report["previous"]["tid"],
            report["previous"]["region_index"],
        ]
        assert graph["ordered"] is False
        assert graph["hb_path"] is None

    def test_clean_run_is_fully_ordered_where_synced(self, clean_payload):
        graph = build_hb_graph(clean_payload)
        assert graph["pair"] is None and graph["ordered"] is None
        # Fork edges order the root's first region before every child.
        node_ids = {n["id"] for n in graph["nodes"]}
        assert "T0:R0" in node_ids
        fork_dsts = [
            e["dst"] for e in graph["edges"] if e["kind"] == "fork"
        ]
        assert fork_dsts

    def test_dot_highlights_pair(self, racy_payload):
        graph = build_hb_graph(racy_payload)
        dot = hb_graph_dot(graph)
        assert dot.startswith("digraph happens_before {")
        cur = graph["pair"]["current"]
        assert f"T{cur[0]}:R{cur[1]}" in dot
        assert "red" in dot


# ---------------------------------------------------------------------------
# HTML report


class TestHtml:
    def test_names_same_pair_as_race_report(self, racy_payload):
        graph = build_hb_graph(racy_payload)
        html = render_html(racy_payload, graph=graph)
        report = racy_payload["race_report"]
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert f"{report['address']:#x}" in html
        for side in ("current", "previous"):
            tid, region = report[side]["tid"], report[side]["region_index"]
            assert f"T{tid}" in html and f"SFR #{region}" in html
        assert report["text"].splitlines()[0] in html
        assert "<svg" in html and "</svg>" in html
        # Self-contained: no external scripts, styles, or fetches
        # (the SVG xmlns URI is an identifier, not a fetch).
        assert "<script src" not in html and "<link" not in html
        assert "fetch(" not in html and "XMLHttpRequest" not in html

    def test_recovery_and_hot_sites_panels(self):
        from repro.obs import SiteProfiler

        recorder = TimelineRecorder(label="dedup")
        profiler = SiteProfiler()
        program = build_program(
            get_benchmark("dedup"), scale="test", racy=True, seed=0
        )
        with telemetry_scope(sites=profiler):
            run_clean(program, timeline=recorder, recovery="rollback-retry")
        html = render_html(
            recorder.to_payload(), sites=profiler.to_payload()
        )
        assert "retried" in html or "quarantined" in html or "Recovery" in html
        assert "Hot sites" in html or "hot-site" in html.lower()

    def test_write_forensics_bundle(self, tmp_path, racy_payload):
        paths = write_forensics(tmp_path, "dedup", racy_payload)
        assert sorted(paths) == ["hb_dot", "hb_json", "html", "trace"]
        trace = json.loads((tmp_path / "dedup.trace.json").read_text())
        assert validate_chrome_trace(trace) == []
        hb = json.loads((tmp_path / "dedup.hb.json").read_text())
        assert hb["ordered"] is False


# ---------------------------------------------------------------------------
# determinism: the whole point of the logical clock


class TestDeterminism:
    JOBS = [
        Job(
            fn="repro.faults:chaos_job",
            config={
                "benchmark": name,
                "racy": racy,
                "seed": 0,
                "recovery": None,
            },
            name=f"{name}@{'racy' if racy else 'clean'}",
        )
        for name, racy in (("dedup", True), ("lu_ncb", False))
    ]

    def _timelines(self, workers, store=None):
        runner = JobRunner(
            workers=workers,
            record_timelines=True,
            store=store,
            tracer=Tracer(),
        )
        results = runner.run(self.JOBS)
        assert all(r.ok for r in results), [r.error for r in results]
        return runner.timelines

    def test_serial_parallel_and_cache_replay_identical(self, tmp_path):
        serial = self._timelines(1)
        parallel = self._timelines(4)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )
        store = CheckpointStore(tmp_path / "cache")
        cold = self._timelines(4, store=store)
        warm = self._timelines(1, store=store)
        assert json.dumps(cold, sort_keys=True) == json.dumps(
            warm, sort_keys=True
        )
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            cold, sort_keys=True
        )
        # And the exports built from them are byte-identical too.
        p = serial[0]["timelines"][0]
        q = json.loads(json.dumps(warm[0]["timelines"][0]))
        assert json.dumps(chrome_trace(p), sort_keys=True) == json.dumps(
            chrome_trace(q), sort_keys=True
        )
        assert json.dumps(build_hb_graph(p), sort_keys=True) == json.dumps(
            build_hb_graph(q), sort_keys=True
        )

    def test_recovery_mode_does_not_perturb_race_free_timeline(self):
        plain, _ = _record(*CLEAN)
        recovered, _ = _record(*CLEAN, recovery="rollback-retry")
        # The recovery field differs by construction (a report exists);
        # the recorded execution - and thus every export - must not.
        assert json.dumps(chrome_trace(plain), sort_keys=True) == json.dumps(
            chrome_trace(recovered), sort_keys=True
        )
        assert json.dumps(
            build_hb_graph(plain), sort_keys=True
        ) == json.dumps(build_hb_graph(recovered), sort_keys=True)

    def test_repeated_runs_byte_identical(self, racy_payload):
        again, _ = _record(*RACY)
        assert json.dumps(again, sort_keys=True) == json.dumps(
            racy_payload, sort_keys=True
        )


# ---------------------------------------------------------------------------
# ambient sink / chaos integration


class TestIntegration:
    def test_ambient_sink_collects_runs(self):
        sink = TimelineSink()
        with telemetry_scope(timeline=sink):
            _, r1 = (
                run_clean(
                    build_program(
                        get_benchmark("lu_ncb"), scale="test", racy=False, seed=0
                    )
                ),
                None,
            )
            run_clean(
                build_program(
                    get_benchmark("dedup"), scale="test", racy=True, seed=0
                )
            )
        assert len(sink.payloads) == 2
        assert sink.payloads[0]["race"] is None
        assert sink.payloads[1]["race"] is not None
        assert sink.payloads[1]["race_report"] is not None

    def test_raise_on_race_still_delivers_payload(self):
        from repro.core.exceptions import RaceException

        sink = TimelineSink()
        with telemetry_scope(timeline=sink):
            with pytest.raises(RaceException):
                run_clean(
                    build_program(
                        get_benchmark("dedup"), scale="test", racy=True, seed=0
                    ),
                    raise_on_race=True,
                )
        assert len(sink.payloads) == 1
        assert sink.payloads[0]["race"] is not None

    def test_run_job_traced_ships_timelines(self):
        job = Job(
            fn="repro.faults:chaos_job",
            config={"benchmark": "dedup", "racy": True, "seed": 0},
        )
        _, telem = run_job_traced(job, timelines=True)
        assert len(telem["timelines"]) == 1
        assert telem["timelines"][0]["format"] == TIMELINE_FORMAT_VERSION
        _, telem = run_job_traced(job)
        assert telem["timelines"] is None

    def test_race_report_artifact_links(self):
        site = AccessSite(1, 5, 2, True, 0x10, 8)
        report = RaceReport("RAW", 0x10, site, None)
        linked = report.with_artifacts({"html": "out/r.html"})
        assert "out/r.html" in linked.render()
        assert linked.to_payload()["artifacts"] == {"html": "out/r.html"}
        assert report.artifacts is None  # original untouched


# ---------------------------------------------------------------------------
# spans JSONL: origin normalization + versioning (satellite of this PR)


class TestSpansOrigin:
    def test_records_are_origin_relative(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        record = tracer.finished[0].to_record(tracer.origin)
        assert 0 <= record["start"] <= record["end"] < 60.0

    def test_ingest_rebases_worker_spans_onto_parent_axis(self):
        parent = Tracer()
        with parent.span("runner.job", id="j1"):
            worker = Tracer()
            with worker.span("job.run"):
                pass
            records = [s.to_record(worker.origin) for s in worker.finished]
        job_span = parent.finished[-1]
        at = job_span.start - parent.origin
        parent.ingest(records, at=at, job="j1")
        ingested = parent.ingested[0]
        # The worker span now sits inside the parent-side job window.
        assert ingested["start"] >= at
        assert ingested["end"] <= (job_span.end - parent.origin) + 1e-6

    def test_runner_merge_orders_worker_spans(self):
        runner = JobRunner(workers=2, tracer=Tracer())
        jobs = [
            Job(fn="tests._runner_jobs:double", config={"x": i}, name=f"d{i}")
            for i in range(2)
        ]
        results = runner.run(jobs)
        assert all(r.ok for r in results)
        ingested = [
            r for r in runner.tracer.ingested if r.get("name") == "job.run"
        ]
        assert len(ingested) == 2
        job_spans = {
            s.attrs["job"]: s for s in runner.tracer.spans_named("runner.job")
        }
        origin = runner.tracer.origin
        for record in ingested:
            parent_span = job_spans[record["attrs"]["job"]]
            assert record["start"] >= parent_span.start - origin - 1e-6
            assert record["end"] <= parent_span.end - origin + 1e-6

    def test_read_jsonl_rejects_future_major(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps(
                {"type": "header", "format": SPANS_FORMAT_VERSION + 1}
            )
            + "\n"
        )
        with pytest.raises(ValueError):
            read_jsonl(str(path))
        # Headerless legacy files still load.
        legacy = tmp_path / "legacy.jsonl"
        legacy.write_text(json.dumps({"type": "span", "name": "x"}) + "\n")
        assert read_jsonl(str(legacy))[0]["name"] == "x"

    def test_exporter_writes_header_once(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        with JsonlExporter(str(path)) as exporter:
            tracer = Tracer(exporter)
            exporter.export_header()  # idempotent
            tracer.event("marker")
        records = read_jsonl(str(path))
        assert [r["type"] for r in records] == ["header", "span"]
        assert records[0]["format"] == SPANS_FORMAT_VERSION


# ---------------------------------------------------------------------------
# Batch-lane compatibility: forensic observers under block dispatch
# ---------------------------------------------------------------------------


class _SchedulerStub:
    """Just enough scheduler surface for a detached TimelineRecorder."""

    _threads = {0: None}

    def region_of(self, tid):
        return 0

    def det_counter(self, tid):
        return 0


def _forensic_events(n=48):
    """A deterministic mixed access run: repeats (same-epoch hits),
    private accesses, and several distinct addresses."""
    from repro.core.events import AccessEvent

    events = []
    for i in range(n):
        events.append(
            AccessEvent(
                tid=0,
                address=0x1000 + (i % 5) * 8,
                size=8 if i % 3 else 4,
                is_write=(i % 2 == 0),
                private=(i % 7 == 0),
            )
        )
    return events


class TestBatchLaneCompatibility:
    """Delivering an access run as one ``on_access_block`` must be
    observationally identical to per-event hook delivery for every
    forensic observer — timeline payloads byte-identical, site profiles
    figure-identical."""

    def test_timeline_payload_byte_identical_under_batching(self):
        def drive(recorder, batched):
            recorder.attach(_SchedulerStub())
            recorder.on_thread_start(0, None)
            events = _forensic_events()
            if batched:
                recorder.on_access_block(0, events)
            else:
                for event in events:
                    recorder.before_access(event)
                    recorder.after_access(event)
            recorder.on_sync_commit(0, None)
            recorder.on_thread_exit(0)
            return recorder.to_payload()

        scalar = drive(TimelineRecorder(label="lane"), batched=False)
        batched = drive(TimelineRecorder(label="lane"), batched=True)
        assert json.dumps(scalar, sort_keys=True) == json.dumps(
            batched, sort_keys=True
        )

    def test_site_profiler_identical_under_batching(self):
        from repro.clean import CleanMonitor
        from repro.core import CleanDetector
        from repro.obs.sites import SiteProfiler

        def drive(batched):
            sites = SiteProfiler()
            monitor = CleanMonitor(
                detector=CleanDetector(max_threads=4), sites=sites
            )
            monitor.on_thread_start(0, None)
            events = _forensic_events()
            if batched:
                monitor.on_access_block(0, events)
            else:
                for event in events:
                    monitor.before_access(event)
                    monitor.after_access(event)
            return sites, monitor.detector.stats

        scalar_sites, scalar_stats = drive(batched=False)
        batch_sites, batch_stats = drive(batched=True)
        assert scalar_sites.to_payload() == batch_sites.to_payload()
        assert scalar_stats.reads == batch_stats.reads
        assert scalar_stats.writes == batch_stats.writes
        assert scalar_stats.epoch_comparisons == batch_stats.epoch_comparisons
        assert scalar_stats.epoch_updates == batch_stats.epoch_updates
