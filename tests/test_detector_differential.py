"""Differential property tests of the Figure-2 algorithm itself.

The program-level property tests exercise CLEAN through the runtime;
these go one level lower and drive the *detectors* directly with random
access/sync scripts, comparing:

* CLEAN vs FastTrack: CLEAN raises exactly when FastTrack's WAW/RAW side
  fires (CLEAN is "FastTrack minus the read metadata", so their
  write-epoch behaviour must be identical);
* CLEAN vectorized vs scalar: the Section-4.4 fast path is a pure
  optimization — same exceptions, same final epoch state;
* CLEAN vs the classical vector-clock detector's WAW/RAW projection.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import FastTrackDetector, VcRaceDetector
from repro.core import CleanDetector, RaceException

N_THREADS = 4
N_ADDRS = 6  # 8-byte slots
LOCKS = ("L0", "L1")

# One action: (kind, actor, target, size_or_lock)
actions = st.lists(
    st.one_of(
        st.tuples(
            st.just("read"),
            st.integers(0, N_THREADS - 1),
            st.integers(0, N_ADDRS - 1),
            st.sampled_from([1, 2, 4, 8]),
        ),
        st.tuples(
            st.just("write"),
            st.integers(0, N_THREADS - 1),
            st.integers(0, N_ADDRS - 1),
            st.sampled_from([1, 2, 4, 8]),
        ),
        st.tuples(
            st.just("release"),
            st.integers(0, N_THREADS - 1),
            st.integers(0, len(LOCKS) - 1),
            st.just(0),
        ),
        st.tuples(
            st.just("acquire"),
            st.integers(0, N_THREADS - 1),
            st.integers(0, len(LOCKS) - 1),
            st.just(0),
        ),
    ),
    min_size=1,
    max_size=40,
)


def spawn_all(detector):
    """Root plus three children, all concurrent siblings of the root."""
    detector.spawn_root()
    for _ in range(N_THREADS - 1):
        detector.fork(0)
    return detector


def drive(detector, script):
    """Run the script; returns ("raise", step, kind) or ("done", ...)."""
    for step, (kind, actor, target, extra) in enumerate(script):
        try:
            if kind == "read":
                detector.check_read(actor, target * 8, extra)
            elif kind == "write":
                detector.check_write(actor, target * 8, extra)
            elif kind == "release":
                detector.release(actor, LOCKS[target])
            else:
                detector.acquire(actor, LOCKS[target])
        except RaceException as exc:
            return ("raise", step, exc.kind)
    return ("done", None, None)


class TestCleanVsFastTrack:
    @settings(max_examples=150, deadline=None)
    @given(script=actions)
    def test_same_waw_raw_behaviour(self, script):
        """CLEAN stops at the same step, with the same kind, as the first
        WAW/RAW FastTrack records (FastTrack's extra WAR reports are
        filtered out of the comparison)."""
        clean = spawn_all(CleanDetector(max_threads=N_THREADS))
        clean_outcome = drive(clean, script)

        ft_first = None
        # Drive FastTrack step by step to find its first WAW/RAW report.
        ft2 = spawn_all(
            FastTrackDetector(max_threads=N_THREADS, record_only=True)
        )
        for step, (kind, actor, target, extra) in enumerate(script):
            before = sum(
                1 for e in ft2.reported if e.kind in ("WAW", "RAW")
            )
            if kind == "read":
                ft2.check_read(actor, target * 8, extra)
            elif kind == "write":
                ft2.check_write(actor, target * 8, extra)
            elif kind == "release":
                ft2.release(actor, LOCKS[target])
            else:
                ft2.acquire(actor, LOCKS[target])
            after = [e for e in ft2.reported if e.kind in ("WAW", "RAW")]
            if len(after) > before:
                ft_first = ("raise", step, after[before].kind)
                break
        if ft_first is None:
            ft_first = ("done", None, None)

        assert clean_outcome == ft_first, (
            f"CLEAN {clean_outcome} vs FastTrack-WAW/RAW {ft_first}"
        )


class TestVectorizedEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(script=actions)
    def test_vectorization_is_pure_optimization(self, script):
        vec = spawn_all(CleanDetector(max_threads=N_THREADS, vectorized=True))
        scalar = spawn_all(
            CleanDetector(max_threads=N_THREADS, vectorized=False)
        )
        assert drive(vec, script) == drive(scalar, script)
        assert dict(vec.shadow.items()) == dict(scalar.shadow.items())


class TestCleanVsVectorClock:
    @settings(max_examples=100, deadline=None)
    @given(script=actions)
    def test_agrees_with_classical_detector_projection(self, script):
        clean = spawn_all(CleanDetector(max_threads=N_THREADS))
        clean_outcome = drive(clean, script)

        vc = spawn_all(VcRaceDetector(max_threads=N_THREADS, record_only=True))
        vc_first = ("done", None, None)
        for step, (kind, actor, target, extra) in enumerate(script):
            before = sum(1 for e in vc.reported if e.kind in ("WAW", "RAW"))
            if kind == "read":
                vc.check_read(actor, target * 8, extra)
            elif kind == "write":
                vc.check_write(actor, target * 8, extra)
            elif kind == "release":
                vc.release(actor, LOCKS[target])
            else:
                vc.acquire(actor, LOCKS[target])
            after = [e for e in vc.reported if e.kind in ("WAW", "RAW")]
            if len(after) > before:
                vc_first = ("raise", step, after[before].kind)
                break
        assert clean_outcome == vc_first
