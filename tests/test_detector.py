"""Unit tests for the CLEAN detector (the Figure-2 check and Section 4)."""

import pytest

from repro.core import (
    CleanDetector,
    MetadataError,
    RawRaceException,
    TooManyThreadsError,
    WawRaceException,
)
from repro.core.epoch import EpochLayout


@pytest.fixture
def det():
    d = CleanDetector(max_threads=8)
    d.spawn_root()
    return d


class TestThreadLifecycle:
    def test_root_is_zero(self):
        d = CleanDetector()
        assert d.spawn_root() == 0

    def test_double_root_rejected(self, det):
        with pytest.raises(MetadataError):
            det.spawn_root()

    def test_fork_allocates_sequential(self, det):
        assert det.fork(0) == 1
        assert det.fork(0) == 2

    def test_fork_pinned_tid(self, det):
        assert det.fork(0, child_tid=5) == 5

    def test_fork_pinned_busy_tid_rejected(self, det):
        det.fork(0, child_tid=3)
        with pytest.raises(MetadataError):
            det.fork(0, child_tid=3)

    def test_join_frees_tid(self, det):
        child = det.fork(0)
        det.join(0, child)
        assert det.fork(0) == child  # reused

    def test_too_many_threads(self):
        d = CleanDetector(max_threads=2)
        d.spawn_root()
        d.fork(0)
        with pytest.raises(TooManyThreadsError):
            d.fork(0)

    def test_layout_bounds_threads(self):
        with pytest.raises(TooManyThreadsError):
            CleanDetector(max_threads=300)  # default tid_bits=8 -> max 256

    def test_dead_thread_access_rejected(self, det):
        child = det.fork(0)
        det.join(0, child)
        with pytest.raises(MetadataError):
            det.check_read(child, 0)


class TestRaceDetection:
    def test_waw_between_unordered_threads(self, det):
        child = det.fork(0)
        det.check_write(child, 100)
        with pytest.raises(WawRaceException):
            det.check_write(0, 100)

    def test_raw_between_unordered_threads(self, det):
        child = det.fork(0)
        det.check_write(child, 100)
        with pytest.raises(RawRaceException):
            det.check_read(0, 100)

    def test_no_war_detection(self, det):
        """CLEAN's defining omission: a write after an unordered read is
        silent."""
        child = det.fork(0)
        det.check_read(child, 100)
        det.check_write(0, 100)  # must NOT raise
        assert det.stats.races_raised == 0

    def test_same_thread_never_races(self, det):
        det.check_write(0, 50)
        det.check_write(0, 50)
        det.check_read(0, 50)
        assert det.stats.races_raised == 0

    def test_fork_orders_parent_past(self, det):
        det.check_write(0, 10)
        child = det.fork(0)
        det.check_read(child, 10)  # ordered: no race
        det.check_write(child, 10)
        assert det.stats.races_raised == 0

    def test_parent_write_after_fork_races_with_child(self, det):
        child = det.fork(0)
        det.check_write(0, 10)
        with pytest.raises(RawRaceException):
            det.check_read(child, 10)

    def test_join_orders_child_past(self, det):
        child = det.fork(0)
        det.check_write(child, 10)
        det.join(0, child)
        det.check_read(0, 10)  # ordered via join: no race
        assert det.stats.races_raised == 0

    def test_lock_transfer_orders_accesses(self, det):
        child = det.fork(0)
        det.check_write(0, 10)
        det.release(0, "L")
        det.acquire(child, "L")
        det.check_write(child, 10)  # ordered via lock: no race
        assert det.stats.races_raised == 0

    def test_unrelated_lock_does_not_order(self, det):
        child = det.fork(0)
        det.check_write(0, 10)
        det.release(0, "L1")
        det.acquire(child, "L2")
        with pytest.raises(WawRaceException):
            det.check_write(child, 10)

    def test_release_before_write_does_not_order(self, det):
        child = det.fork(0)
        det.release(0, "L")
        det.check_write(0, 10)  # after the release: not covered by it
        det.acquire(child, "L")
        with pytest.raises(RawRaceException):
            det.check_read(child, 10)

    def test_race_exception_details(self, det):
        child = det.fork(0)
        det.check_write(child, 0x200, 4)
        with pytest.raises(WawRaceException) as info:
            det.check_write(0, 0x200, 4)
        exc = info.value
        assert exc.address == 0x200
        assert exc.accessing_tid == 0
        assert exc.prior_writer_tid == child
        assert exc.kind == "WAW"

    def test_partial_overlap_races(self, det):
        child = det.fork(0)
        det.check_write(child, 100, 8)
        with pytest.raises(WawRaceException):
            det.check_write(0, 104, 2)  # overlaps bytes 104-105


class TestMultiByte:
    def test_uniform_epoch_fast_path_counted(self, det):
        det.check_write(0, 64, 8)
        det.check_read(0, 64, 8)
        assert det.stats.multibyte_accesses == 2
        assert det.stats.multibyte_uniform_epoch == 2

    def test_mixed_epochs_slow_path(self, det):
        child = det.fork(0)
        det.check_write(child, 64, 4)
        det.release(child, "L")
        det.acquire(0, "L")
        det.check_write(0, 68, 4)
        # bytes 64..71 now have two different epochs
        det.check_read(0, 64, 8)
        assert det.stats.multibyte_uniform_epoch < det.stats.multibyte_accesses

    def test_vectorized_and_scalar_agree(self):
        """With and without the Section-4.4 fast path, detection outcome
        and final metadata are identical."""
        for vectorized in (True, False):
            d = CleanDetector(vectorized=vectorized)
            d.spawn_root()
            child = d.fork(0)
            d.check_write(child, 0, 8)
            with pytest.raises(WawRaceException):
                d.check_write(0, 4, 8)

    def test_wide_fraction_stat(self, det):
        det.check_write(0, 0, 8)
        det.check_write(0, 8, 1)
        det.check_read(0, 0, 4)
        assert det.stats.accesses_ge_4_bytes == 2
        assert det.stats.accesses == 3
        assert det.stats.fraction_wide == pytest.approx(2 / 3)

    def test_zero_size_rejected(self, det):
        with pytest.raises(ValueError):
            det.check_read(0, 0, 0)


class TestCasAtomicity:
    def test_concurrent_epoch_change_is_waw(self, det):
        """Section 4.3: if the epoch changed between the check's load and
        its update, the CAS fails and a WAW race is raised."""
        child = det.fork(0)

        class RacingShadow:
            """Simulates a concurrent check completing between load and CAS."""

            def __init__(self, inner):
                self.inner = inner
                self.interfere_at = None

            def load_range(self, address, size):
                return self.inner.load_range(address, size)

            def load(self, address):
                return self.inner.load(address)

            def compare_and_swap(self, address, expected, new):
                if self.interfere_at == address:
                    self.inner.store(address, 0xDEAD0001)
                    self.interfere_at = None
                return self.inner.compare_and_swap(address, expected, new)

            def __getattr__(self, name):
                return getattr(self.inner, name)

        racing = RacingShadow(det.shadow)
        det.shadow = racing
        racing.interfere_at = 500
        with pytest.raises(WawRaceException):
            det.check_write(0, 500, 1)
        assert det.stats.cas_failures == 1


class TestRollover:
    def make_small(self, auto=True):
        layout = EpochLayout(clock_bits=4, tid_bits=3)
        d = CleanDetector(max_threads=4, layout=layout, auto_rollover=auto)
        d.spawn_root()
        return d

    def test_auto_reset_on_overflow(self):
        d = self.make_small()
        for _ in range(40):  # far beyond 2**4 sync ops
            d.release(0, "L")
        assert d.stats.rollovers >= 1

    def test_manual_mode_raises(self):
        d = self.make_small(auto=False)
        with pytest.raises(OverflowError):
            for _ in range(40):
                d.release(0, "L")

    def test_reset_clears_shadow(self):
        d = self.make_small()
        d.check_write(0, 77)
        d.reset_metadata()
        assert d.shadow.load(77) == 0

    def test_no_false_positive_after_reset(self):
        """Pre-reset ordering is forgotten but never misreported: ordered
        accesses after a reset stay silent."""
        d = self.make_small()
        child = d.fork(0)
        d.check_write(0, 10)
        d.release(0, "L")
        d.acquire(child, "L")
        d.reset_metadata()
        d.check_read(child, 10)  # would be ordered anyway; no exception
        assert d.stats.races_raised == 0

    def test_post_reset_races_still_caught(self):
        """A race entirely after the reset must still be detected."""
        d = self.make_small()
        child = d.fork(0)
        d.reset_metadata()
        d.check_write(child, 10)
        with pytest.raises(WawRaceException):
            d.check_write(0, 10)

    def test_race_spanning_reset_is_missed(self):
        """The documented limitation: the record of the earlier access is
        lost at the reset, so the race is not reported."""
        d = self.make_small()
        child = d.fork(0)
        d.check_write(child, 10)
        d.reset_metadata()
        d.check_write(0, 10)  # racy in reality, but silent by design
        assert d.stats.races_raised == 0

    def test_rollover_imminent(self):
        d = self.make_small()
        assert not d.rollover_imminent(slack=2)
        for _ in range(13):
            d.release(0, "L")
        assert d.rollover_imminent(slack=2)


class TestStats:
    def test_counts(self, det):
        det.check_write(0, 0, 4)
        det.check_read(0, 0, 4)
        det.check_read(0, 4, 1)
        s = det.stats
        assert s.writes == 1
        assert s.reads == 2
        assert s.written_bytes == 4
        assert s.read_bytes == 5

    def test_epoch_updates_only_on_change(self, det):
        det.check_write(0, 0, 4)
        updates = det.stats.epoch_updates
        det.check_write(0, 0, 4)  # same epoch: no update needed
        assert det.stats.epoch_updates == updates

    def test_sync_ops_counted(self, det):
        det.release(0, "L")
        det.acquire(0, "L")
        assert det.stats.sync_ops == 2
