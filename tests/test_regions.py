"""Tests for SFR tracking and the isolation/write-atomicity oracles."""

from repro.runtime import (
    Acquire,
    Compute,
    IsolationOracle,
    Join,
    Lock,
    Program,
    Read,
    Release,
    ScriptedPolicy,
    SfrTracker,
    Spawn,
    Write,
    WriteAtomicityOracle,
)


def run_with_oracles(main, policy=None):
    tracker = SfrTracker()
    isolation = IsolationOracle(tracker)
    atomicity = WriteAtomicityOracle(tracker)
    result = Program(main).run(
        policy=policy, monitors=[tracker, isolation, atomicity]
    )
    return result, isolation, atomicity


class TestSfrTracker:
    def test_regions_advance_on_sync(self):
        tracker = SfrTracker()
        lock = Lock()

        def main(ctx):
            yield Compute(1)
            yield Acquire(lock)
            yield Compute(1)
            yield Release(lock)

        Program(main).run(monitors=[tracker])
        # initial region + one per sync commit (acquire, release)
        assert tracker.regions_started == 3

    def test_current_region_changes(self):
        tracker = SfrTracker()
        seen = []
        lock = Lock()

        def main(ctx):
            seen.append(tracker.current_region(0))
            yield Acquire(lock)
            seen.append(tracker.current_region(0))
            yield Release(lock)
            seen.append(tracker.current_region(0))

        Program(main).run(monitors=[tracker])
        assert seen == [(0, 0), (0, 1), (0, 2)]

    def test_overlap_of_concurrent_regions(self):
        tracker = SfrTracker()
        regions = {}

        def child(ctx):
            regions["child"] = tracker.current_region(1)
            yield Compute(1)
            tracker.tick()
            yield Compute(1)

        def main(ctx):
            regions["pre"] = tracker.current_region(0)
            kid = yield Spawn(child)
            regions["main"] = tracker.current_region(0)
            tracker.tick()
            yield Join(kid)

        Program(main).run(monitors=[tracker])
        assert tracker.overlapped(regions["main"], regions["child"])


class TestIsolationOracle:
    def test_racy_read_of_open_region_write_flagged(self):
        def child(ctx, addr):
            yield Write(addr, 4, 7)
            yield Compute(50)  # keep the region open

        def main(ctx):
            addr = ctx.alloc(4)
            kid = yield Spawn(child, (addr,))
            yield Read(addr, 4)
            yield Join(kid)

        # spawn, child writes, then main reads while child's SFR is open
        _, isolation, _ = run_with_oracles(main, ScriptedPolicy([0, 1, 0]))
        assert any(v.kind == "isolation" for v in isolation.violations)

    def test_synchronized_handoff_not_flagged(self):
        lock = Lock()

        def child(ctx, addr):
            yield Acquire(lock)
            yield Write(addr, 4, 7)
            yield Release(lock)

        def main(ctx):
            addr = ctx.alloc(4)
            kid = yield Spawn(child, (addr,))
            yield Join(kid)
            yield Acquire(lock)
            yield Read(addr, 4)
            yield Release(lock)

        _, isolation, _ = run_with_oracles(main)
        assert isolation.violations == []

    def test_own_writes_never_flagged(self):
        def main(ctx):
            addr = ctx.alloc(4)
            yield Write(addr, 4, 1)
            yield Read(addr, 4)

        _, isolation, _ = run_with_oracles(main)
        assert isolation.violations == []

    def test_private_accesses_ignored(self):
        def child(ctx, addr):
            yield Write(addr, 4, 7, private=True)
            yield Compute(50)

        def main(ctx):
            addr = ctx.alloc(4)
            kid = yield Spawn(child, (addr,))
            yield Read(addr, 4, private=True)
            yield Join(kid)

        _, isolation, _ = run_with_oracles(
            main, ScriptedPolicy([0, 0, 1, 0, 1, 1, 0])
        )
        assert isolation.violations == []


class TestWriteAtomicityOracle:
    def torn_program(self):
        """Figure 1b: two SFRs write both halves of an 8-byte variable; a
        reader can see one half from each."""

        def writer_a(ctx, addr):
            yield Write(addr, 4, 0x11111111)      # low half
            yield Write(addr + 4, 4, 0x11111111)  # high half

        def writer_b(ctx, addr):
            yield Write(addr, 4, 0x22222222)
            yield Write(addr + 4, 4, 0x22222222)

        def main(ctx):
            addr = ctx.alloc(8)
            a = yield Spawn(writer_a, (addr,))
            b = yield Spawn(writer_b, (addr,))
            value = yield Read(addr, 8)
            yield Join(a)
            yield Join(b)
            return value

        return main

    def test_half_half_outcome_flagged(self):
        """Every schedule producing a Figure-1b torn value is flagged.

        A torn read arises two ways, matching the paper's two
        write-atomicity conditions: observing an *in-progress* region's
        writes (condition i — the isolation oracle flags it) or mixing
        two temporally-overlapping writers (condition ii — the atomicity
        oracle flags it).  Either flag counts.
        """
        from repro.runtime import RandomPolicy

        torn_values = {0x1111111122222222, 0x2222222211111111}
        saw_torn = False
        for seed in range(40):
            result, isolation, atomicity = run_with_oracles(
                self.torn_program(), RandomPolicy(seed)
            )
            value = result.thread_results[0]
            if value in torn_values:
                saw_torn = True
                flagged = isolation.violations or any(
                    v.kind == "write-atomicity" for v in atomicity.violations
                )
                assert flagged, f"torn value {value:#x} not flagged (seed {seed})"
        assert saw_torn, "no schedule produced the Figure-1b torn outcome"

    def test_serialized_writers_not_flagged(self):
        def writer(ctx, addr, pattern):
            yield Write(addr, 4, pattern)
            yield Write(addr + 4, 4, pattern)

        def main(ctx):
            addr = ctx.alloc(8)
            a = yield Spawn(writer, (addr, 0x11111111))
            yield Join(a)
            b = yield Spawn(writer, (addr, 0x22222222))
            yield Join(b)
            value = yield Read(addr, 8)
            return value

        result, _, atomicity = run_with_oracles(main)
        assert result.thread_results[0] == 0x2222222222222222
        assert atomicity.violations == []

    def test_intentional_partial_update_not_flagged(self):
        """A later region updating only half of the data is legitimate —
        the interval check must not misreport it."""

        def full_writer(ctx, addr):
            yield Write(addr, 4, 0x11111111)
            yield Write(addr + 4, 4, 0x11111111)

        def half_writer(ctx, addr):
            yield Write(addr, 4, 0x33333333)

        def main(ctx):
            addr = ctx.alloc(8)
            a = yield Spawn(full_writer, (addr,))
            yield Join(a)
            b = yield Spawn(half_writer, (addr,))
            yield Join(b)
            return (yield Read(addr, 8))

        result, _, atomicity = run_with_oracles(main)
        assert result.thread_results[0] == 0x1111111133333333
        assert atomicity.violations == []
