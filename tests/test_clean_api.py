"""Tests for the top-level CLEAN façade (repro.clean / repro package)."""

import pytest

import repro
from repro import CleanDetector, RaceException, run_clean
from repro.baselines import FastTrackDetector
from repro.clean import CleanMonitor, clean_stack
from repro.core.rollover import RolloverPolicy
from repro.core.epoch import EpochLayout
from repro.runtime import Program, RandomPolicy, Read, Spawn, Join, Write


def racy_program():
    def racer(ctx, addr):
        yield Write(addr, 4, 7)

    def main(ctx):
        addr = ctx.alloc(4)
        kid = yield Spawn(racer, (addr,))
        yield Write(addr, 4, 1)
        yield Join(kid)

    return Program(main)


def quiet_program():
    def main(ctx):
        addr = ctx.alloc(4)
        yield Write(addr, 4, 7)
        return (yield Read(addr, 4))

    return Program(main)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_docstring_flow(self):
        result = run_clean(racy_program())
        assert isinstance(result.race, RaceException)


class TestRunClean:
    def test_raise_on_race(self):
        with pytest.raises(RaceException):
            run_clean(racy_program(), raise_on_race=True)

    def test_race_recorded_by_default(self):
        result = run_clean(racy_program())
        assert result.race is not None
        assert result.race.kind == "WAW"

    def test_detection_can_be_disabled(self):
        result = run_clean(racy_program(), detect=False)
        assert result.race is None  # nothing watching

    def test_determinism_can_be_disabled(self):
        result = run_clean(quiet_program(), deterministic=False)
        assert result.race is None

    def test_custom_detector_passed_through(self):
        detector = CleanDetector(max_threads=8)
        result = run_clean(racy_program(), detector=detector, max_threads=8)
        assert result.race is not None
        assert detector.stats.races_raised == 1

    def test_baseline_detector_via_monitor(self):
        """Any detector with the common API plugs into the same adapter."""
        ft = FastTrackDetector(max_threads=8, record_only=True)
        result = racy_program().run(
            monitors=[CleanMonitor(detector=ft)], max_threads=8
        )
        assert result.race is None  # record_only never raises
        assert "WAW" in ft.race_kinds()

    def test_rollover_policy_wired(self):
        layout = EpochLayout(clock_bits=4, tid_bits=4)
        detector = CleanDetector(max_threads=8, layout=layout)
        rollover = RolloverPolicy(slack=2)

        def chatty(ctx):
            from repro.runtime import Acquire, Release, Lock

            lock = Lock()
            for _ in range(40):
                yield Acquire(lock)
                yield Release(lock)

        result = run_clean(
            Program(chatty),
            detector=detector,
            rollover=rollover,
            layout=layout,
            max_threads=8,
        )
        assert result.race is None
        assert rollover.count >= 1


class TestCleanStack:
    def test_full_stack(self):
        monitors, clean, gate = clean_stack()
        assert clean is not None and gate is not None
        assert monitors == [clean, gate]

    def test_detection_only(self):
        monitors, clean, gate = clean_stack(deterministic=False)
        assert gate is None
        assert monitors == [clean]

    def test_determinism_only(self):
        monitors, clean, gate = clean_stack(detect=False)
        assert clean is None
        assert monitors == [gate]

    def test_extra_monitors_appended(self):
        from repro.runtime import SfrTracker

        tracker = SfrTracker()
        monitors, _, _ = clean_stack(extra=[tracker])
        assert monitors[-1] is tracker


class TestMonitorAdapter:
    def test_root_tid_mismatch_detected(self):
        monitor = CleanMonitor()
        monitor.detector.spawn_root()  # occupy tid 0 behind the adapter's back
        with pytest.raises(Exception):
            monitor.on_thread_start(0, None)

    def test_sync_keys_are_distinct_per_barrier_generation(self):
        """Each barrier episode gets its own vector clock, so a slow
        thread can never acquire ordering from a *future* episode."""
        from repro.runtime import Barrier

        monitor = CleanMonitor(max_threads=8)
        monitor.on_thread_start(0, None)
        monitor.on_spawn(0, 1)
        barrier = Barrier(2)
        monitor.on_barrier_arrive(0, barrier, 0)
        monitor.on_barrier_arrive(1, barrier, 0)
        monitor.on_barrier_depart(0, barrier, 0)
        monitor.on_barrier_depart(1, barrier, 0)
        keys = set(monitor.detector._lock_vcs)
        assert (barrier.name, 0) in keys
        monitor.on_barrier_arrive(0, barrier, 1)
        keys = set(monitor.detector._lock_vcs)
        assert (barrier.name, 1) in keys
        # Keys are stable names, not object identities: a rebuilt
        # barrier with the same name maps to the same episode clocks.
        assert (barrier.name, 0) in keys
