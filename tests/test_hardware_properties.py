"""Property tests for the hardware substrate.

Hypothesis drives random access sequences and checks structural
invariants of the cache coherence model and the metadata layouts — the
things a trace-driven study silently depends on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import MemoryHierarchy, MetadataLayout
from repro.hardware.cache import LINE_SIZE, MESI_E, MESI_M, MESI_S

# Random access programs: (core, slot, size_exp, is_write)
accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),    # core
        st.integers(min_value=0, max_value=31),   # slot (8B)
        st.sampled_from([1, 2, 4, 8]),            # size
        st.booleans(),                            # write?
    ),
    min_size=1,
    max_size=120,
)


def run_accesses(ops):
    hierarchy = MemoryHierarchy(n_cores=4)
    for core, slot, size, is_write in ops:
        offset = 0 if size == 8 else size * (slot % (8 // size))
        hierarchy.access(core, 0x1000 + slot * 8 + offset, size, is_write)
    return hierarchy


class TestCoherenceInvariants:
    @settings(max_examples=80, deadline=None)
    @given(ops=accesses)
    def test_single_writer(self, ops):
        """SWMR: a line in M (or E) state in one cache is in no other."""
        hierarchy = run_accesses(ops)
        lines = {}
        for core, l1 in enumerate(hierarchy.l1):
            for line, state in l1.resident_lines().items():
                lines.setdefault(line, []).append((core, state))
        for line, holders in lines.items():
            exclusive = [c for c, s in holders if s in (MESI_M, MESI_E)]
            if exclusive:
                assert len(holders) == 1, (
                    f"line {line:#x} exclusive in core {exclusive} but "
                    f"present in {holders}"
                )

    @settings(max_examples=80, deadline=None)
    @given(ops=accesses)
    def test_l1_implies_l2(self, ops):
        """Private-cache inclusion: every L1 line is in the same core's L2."""
        hierarchy = run_accesses(ops)
        for core in range(hierarchy.n_cores):
            l2_lines = set(hierarchy.l2[core].resident_lines())
            for line in hierarchy.l1[core].resident_lines():
                assert line in l2_lines

    @settings(max_examples=80, deadline=None)
    @given(ops=accesses)
    def test_directory_covers_caches(self, ops):
        """Every privately-cached line is known to the directory."""
        hierarchy = run_accesses(ops)
        for core, l1 in enumerate(hierarchy.l1):
            for line in l1.resident_lines():
                assert core in hierarchy._sharers.get(line, set()), (
                    f"core {core} caches {line:#x} but is not a sharer"
                )

    @settings(max_examples=60, deadline=None)
    @given(ops=accesses)
    def test_latency_is_from_the_fixed_menu(self, ops):
        hierarchy = MemoryHierarchy(n_cores=4)
        menu = {1, 10, 15, 35, 120}
        for core, slot, size, is_write in ops:
            offset = 0 if size == 8 else size * (slot % (8 // size))
            latency = hierarchy.access(
                core, 0x1000 + slot * 8 + offset, size, is_write
            )
            assert latency in menu  # single-line accesses only here

    @settings(max_examples=60, deadline=None)
    @given(ops=accesses)
    def test_repeat_read_hits_l1(self, ops):
        """Determinacy: immediately repeating a read is always an L1 hit."""
        hierarchy = MemoryHierarchy(n_cores=4)
        for core, slot, size, is_write in ops:
            address = 0x1000 + slot * 8
            hierarchy.access(core, address, 1, is_write)
            assert hierarchy.access(core, address, 1, False) == 1


# Metadata write scripts: (offset-in-region, size, epoch)
write_scripts = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255),
        st.sampled_from([1, 2, 4, 8]),
        st.integers(min_value=1, max_value=2**22),
    ),
    min_size=1,
    max_size=60,
)


class ReferenceEpochs:
    """The obviously-correct model: one epoch per byte, no layout."""

    def __init__(self):
        self.bytes = {}

    def write(self, address, size, epoch):
        for a in range(address, address + size):
            self.bytes[a] = epoch

    def read(self, address, size):
        return [self.bytes.get(a, 0) for a in range(address, address + size)]


class TestMetadataFunctionalEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(script=write_scripts, mode=st.sampled_from(["clean", "epoch1", "epoch4"]))
    def test_all_layouts_track_reference(self, script, mode):
        """Whatever compact/expanded transitions happen, the epochs every
        layout reports are exactly the per-byte reference."""
        layout = MetadataLayout(mode)
        reference = ReferenceEpochs()
        base = 0x4000
        for offset, size, epoch in script:
            address = base + offset
            layout.apply_write(address, size, epoch)
            reference.write(address, size, epoch)
        for offset, size, _ in script:
            address = base + offset
            assert layout.epochs_for(address, size) == reference.read(
                address, size
            ), f"mode={mode} at {address:#x}"

    @settings(max_examples=80, deadline=None)
    @given(script=write_scripts)
    def test_expansion_is_monotone(self, script):
        """A line never silently collapses back to compact."""
        layout = MetadataLayout("clean")
        base = 0x4000
        expanded = set()
        for offset, size, epoch in script:
            layout.apply_write(base + offset, size, epoch)
            line = (base + offset) - ((base + offset) % LINE_SIZE)
            if layout.is_expanded(line):
                expanded.add(line)
            for seen in expanded:
                assert layout.is_expanded(seen)

    @settings(max_examples=80, deadline=None)
    @given(script=write_scripts)
    def test_aligned_word_writes_never_expand(self, script):
        """Writes covering whole 4-byte groups keep every line compact."""
        layout = MetadataLayout("clean")
        base = 0x4000
        for offset, size, epoch in script:
            aligned = base + (offset & ~7)
            size = 8 if size >= 4 else 4
            plan = layout.apply_write(aligned, size, epoch)
            assert not plan.expansion
        assert layout.expansions == 0
