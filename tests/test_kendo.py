"""Tests for Kendo deterministic synchronization."""

import pytest

from repro.determinism import InstrumentedCounter, KendoGate, PreciseCounter
from repro.runtime import (
    Acquire,
    Compute,
    Join,
    Lock,
    Output,
    Program,
    RandomPolicy,
    Read,
    Release,
    RoundRobinPolicy,
    Spawn,
    Write,
)


def counting_program(n_threads=4, iters=3):
    """Threads of very different speeds contend on one lock-protected
    counter; without deterministic synchronization the increments
    interleave differently across schedules."""
    lock = Lock("counter")

    def worker(ctx, addr, speed, name):
        for _ in range(iters):
            yield Compute(speed)
            yield Acquire(lock)
            value = yield Read(addr, 4)
            yield Write(addr, 4, value + 1)
            yield Output((name, value))
            yield Release(lock)

    def main(ctx):
        addr = ctx.alloc(4)
        kids = []
        for i in range(n_threads):
            kids.append((yield Spawn(worker, (addr, (i + 1) * 7, i))))
        for kid in kids:
            yield Join(kid)
        return (yield Read(addr, 4))

    return main


class TestKendoDeterminism:
    def test_sync_order_identical_across_seeds(self):
        logs = set()
        for seed in range(8):
            result = Program(counting_program()).run(
                policy=RandomPolicy(seed), monitors=[KendoGate()]
            )
            logs.add(tuple((c.tid, c.kind, c.target) for c in result.sync_log))
        assert len(logs) == 1

    def test_fingerprints_identical_across_policies(self):
        fingerprints = set()
        policies = [RoundRobinPolicy()] + [RandomPolicy(s) for s in range(6)]
        for policy in policies:
            result = Program(counting_program()).run(
                policy=policy, monitors=[KendoGate()]
            )
            fingerprints.add(result.fingerprint())
        assert len(fingerprints) == 1

    def test_without_kendo_order_varies(self):
        logs = set()
        for seed in range(12):
            result = Program(counting_program()).run(policy=RandomPolicy(seed))
            logs.add(tuple((c.tid, c.kind) for c in result.sync_log))
        assert len(logs) > 1, "expected nondeterministic sync order without Kendo"

    def test_final_value_correct_under_kendo(self):
        result = Program(counting_program(n_threads=4, iters=3)).run(
            policy=RandomPolicy(1), monitors=[KendoGate()]
        )
        assert result.thread_results[0] == 12

    def test_gate_vetoes_happen(self):
        gate = KendoGate()
        Program(counting_program()).run(policy=RandomPolicy(5), monitors=[gate])
        assert gate.admitted > 0
        assert gate.vetoed > 0

    def test_spawn_order_deterministic(self):
        def child(ctx, name):
            yield Output(name)

        def main(ctx):
            kids = []
            for i in range(5):
                kids.append((yield Spawn(child, (i,))))
            for kid in kids:
                yield Join(kid)
            return tuple(kids)

        tids = set()
        for seed in range(5):
            result = Program(main).run(
                policy=RandomPolicy(seed), monitors=[KendoGate()]
            )
            tids.add(result.thread_results[0])
        assert len(tids) == 1

    def test_pump_resolves_contention_not_deadlock(self):
        """A thread whose turn it is but whose lock is held must not jam
        the system: the pump bumps it past the holder (Kendo's
        wait-with-increment)."""
        lock = Lock()

        def slow_holder(ctx):
            yield Acquire(lock)
            yield Compute(1000)
            yield Release(lock)

        def fast_contender(ctx):
            yield Compute(1)
            yield Acquire(lock)
            yield Release(lock)

        def main(ctx):
            a = yield Spawn(slow_holder)
            b = yield Spawn(fast_contender)
            yield Join(a)
            yield Join(b)
            return "ok"

        for seed in range(6):
            result = Program(main).run(
                policy=RandomPolicy(seed), monitors=[KendoGate()]
            )
            assert result.thread_results[0] == "ok"


class TestCounterModels:
    def test_precise_counts_everything(self):
        model = PreciseCounter()

        def main(ctx):
            yield Compute(3)
            yield Compute(100)

        result = Program(main).run(counter_cost=model)
        assert result.det_counters[0] == 103

    def test_instrumented_skips_small_blocks(self):
        model = InstrumentedCounter(cutoff=10)

        def main(ctx):
            yield Compute(3)    # below cutoff: skipped
            yield Compute(100)  # counted

        result = Program(main).run(counter_cost=model)
        assert result.det_counters[0] == 100
        assert model.skipped == 3

    def test_instrumented_still_counts_memory_ops(self):
        model = InstrumentedCounter(cutoff=10)

        def main(ctx):
            addr = ctx.alloc(4)
            yield Write(addr, 4, 1)
            yield Read(addr, 4)

        result = Program(main).run(counter_cost=model)
        assert result.det_counters[0] == 2

    def test_negative_cutoff_rejected(self):
        with pytest.raises(ValueError):
            InstrumentedCounter(cutoff=-1)

    def test_imprecise_counters_still_deterministic(self):
        """Counter imprecision slows Kendo down but must not break
        determinism (Section 6.2.3)."""
        fingerprints = set()
        for seed in range(6):
            result = Program(counting_program()).run(
                policy=RandomPolicy(seed),
                monitors=[KendoGate()],
                counter_cost=InstrumentedCounter(cutoff=10),
            )
            fingerprints.add(result.fingerprint())
        assert len(fingerprints) == 1
