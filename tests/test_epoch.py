"""Unit tests for the epoch bit layouts."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.epoch import (
    DEFAULT_LAYOUT,
    TINY_LAYOUT,
    WIDE_CLOCK_LAYOUT,
    EpochLayout,
)


class TestLayoutGeometry:
    def test_default_is_32_bits(self):
        assert DEFAULT_LAYOUT.width_bits == 32
        assert DEFAULT_LAYOUT.width_bytes == 4

    def test_default_components(self):
        assert DEFAULT_LAYOUT.clock_bits == 23
        assert DEFAULT_LAYOUT.tid_bits == 8
        assert DEFAULT_LAYOUT.reserve_expanded_bit

    def test_wide_clock_is_32_bits(self):
        assert WIDE_CLOCK_LAYOUT.width_bits == 32
        assert WIDE_CLOCK_LAYOUT.clock_bits == 28

    def test_tiny_is_8_bits(self):
        assert TINY_LAYOUT.width_bits == 8
        assert TINY_LAYOUT.width_bytes == 1

    def test_clock_max(self):
        assert DEFAULT_LAYOUT.clock_max == 2**23 - 1
        assert WIDE_CLOCK_LAYOUT.clock_max == 2**28 - 1

    def test_max_tid(self):
        assert DEFAULT_LAYOUT.max_tid == 255
        assert WIDE_CLOCK_LAYOUT.max_tid == 7

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            EpochLayout(clock_bits=0)
        with pytest.raises(ValueError):
            EpochLayout(tid_bits=0)


class TestPacking:
    def test_pack_zero(self):
        assert DEFAULT_LAYOUT.pack(0, 0) == 0

    def test_pack_unpack(self):
        epoch = DEFAULT_LAYOUT.pack(7, 1234)
        assert DEFAULT_LAYOUT.tid(epoch) == 7
        assert DEFAULT_LAYOUT.clock(epoch) == 1234

    def test_pack_max_values(self):
        layout = DEFAULT_LAYOUT
        epoch = layout.pack(layout.max_tid, layout.clock_max)
        assert layout.tid(epoch) == layout.max_tid
        assert layout.clock(epoch) == layout.clock_max

    def test_pack_rejects_out_of_range_tid(self):
        with pytest.raises(ValueError):
            DEFAULT_LAYOUT.pack(256, 0)
        with pytest.raises(ValueError):
            DEFAULT_LAYOUT.pack(-1, 0)

    def test_pack_rejects_out_of_range_clock(self):
        with pytest.raises(ValueError):
            DEFAULT_LAYOUT.pack(0, DEFAULT_LAYOUT.clock_max + 1)
        with pytest.raises(ValueError):
            DEFAULT_LAYOUT.pack(0, -1)

    @given(
        tid=st.integers(min_value=0, max_value=255),
        clock=st.integers(min_value=0, max_value=2**23 - 1),
    )
    def test_roundtrip_property(self, tid, clock):
        epoch = DEFAULT_LAYOUT.pack(tid, clock)
        assert DEFAULT_LAYOUT.tid(epoch) == tid
        assert DEFAULT_LAYOUT.clock(epoch) == clock
        assert not DEFAULT_LAYOUT.is_expanded(epoch)

    @given(
        clock_bits=st.integers(min_value=1, max_value=28),
        tid_bits=st.integers(min_value=1, max_value=10),
        reserved=st.booleans(),
    )
    def test_roundtrip_any_layout(self, clock_bits, tid_bits, reserved):
        layout = EpochLayout(clock_bits, tid_bits, reserved)
        epoch = layout.pack(layout.max_tid, layout.clock_max)
        assert layout.tid(epoch) == layout.max_tid
        assert layout.clock(epoch) == layout.clock_max


class TestExpandedBit:
    def test_set_and_clear(self):
        epoch = DEFAULT_LAYOUT.pack(3, 99)
        expanded = DEFAULT_LAYOUT.set_expanded(epoch)
        assert DEFAULT_LAYOUT.is_expanded(expanded)
        assert DEFAULT_LAYOUT.clear_expanded(expanded) == epoch

    def test_expanded_preserves_components(self):
        epoch = DEFAULT_LAYOUT.pack(3, 99)
        expanded = DEFAULT_LAYOUT.set_expanded(epoch)
        assert DEFAULT_LAYOUT.tid(expanded) == 3
        assert DEFAULT_LAYOUT.clock(expanded) == 99

    def test_expanded_mask_is_top_bit(self):
        assert DEFAULT_LAYOUT.expanded_mask == 1 << 31

    def test_no_expanded_bit_layout(self):
        assert TINY_LAYOUT.expanded_mask == 0
        with pytest.raises(ValueError):
            TINY_LAYOUT.set_expanded(0)


class TestRollover:
    def test_would_rollover_at_max(self):
        assert DEFAULT_LAYOUT.would_rollover(DEFAULT_LAYOUT.clock_max)

    def test_no_rollover_below_max(self):
        assert not DEFAULT_LAYOUT.would_rollover(DEFAULT_LAYOUT.clock_max - 1)
        assert not DEFAULT_LAYOUT.would_rollover(0)

    def test_wide_layout_rolls_later(self):
        c = DEFAULT_LAYOUT.clock_max
        assert DEFAULT_LAYOUT.would_rollover(c)
        assert not WIDE_CLOCK_LAYOUT.would_rollover(c)
