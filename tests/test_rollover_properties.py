"""Workload-level properties of the clock-rollover machinery (§4.5).

The paper's claim: deterministic metadata resets preserve SFR isolation,
write-atomicity and determinism, even though races spanning a reset are
missed.  We verify on real workloads and random programs:

* race-free workloads under a clock narrow enough to force many resets
  still never raise, and remain deterministic across schedules;
* the oracle-checked guarantee (no isolation/atomicity violations in
  completed runs) survives resets;
* narrowing the clock can only ever *lose* exceptions relative to the
  wide clock (missed spans), never invent them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clean import CleanMonitor
from repro.core import CleanDetector
from repro.core.epoch import DEFAULT_LAYOUT, EpochLayout
from repro.core.rollover import RolloverPolicy
from repro.determinism import KendoGate
from repro.runtime import (
    IsolationOracle,
    RandomPolicy,
    SfrTracker,
    WriteAtomicityOracle,
)
from repro.workloads import build_program, get_benchmark
from repro.workloads.randprog import make_random_program

NARROW = EpochLayout(clock_bits=4, tid_bits=5, reserve_expanded_bit=True)


def run_with_layout(program, layout, seed, slack=2, extra=None):
    detector = CleanDetector(max_threads=24, layout=layout)
    rollover = RolloverPolicy(slack=slack)
    monitors = [CleanMonitor(detector=detector, rollover=rollover), KendoGate()]
    if extra:
        monitors.extend(extra)
    result = program.run(
        policy=RandomPolicy(seed), monitors=monitors, max_threads=24
    )
    return result, rollover


class TestRolloverOnWorkloads:
    def test_race_free_workload_survives_many_resets(self):
        spec = get_benchmark("radiosity")
        program = build_program(spec, scale="test", racy=False, seed=0)
        result, rollover = run_with_layout(program, NARROW, seed=0)
        assert rollover.count >= 1, "the narrow clock must force resets"
        assert result.race is None

    def test_determinism_preserved_across_resets(self):
        """Fingerprints identical across schedules despite resets — the
        per-phase argument of Section 4.5."""
        fingerprints = set()
        reset_counts = set()
        for seed in range(4):
            program = build_program(
                get_benchmark("radiosity"), scale="test", racy=False, seed=0
            )
            result, rollover = run_with_layout(program, NARROW, seed=seed)
            assert result.race is None
            fingerprints.add(result.fingerprint())
            reset_counts.add(rollover.count)
        assert len(fingerprints) == 1
        assert reset_counts != {0}

    def test_reset_points_are_deterministic(self):
        """The sync index at which each reset lands is the same on every
        schedule (they land on the Kendo-ordered sync sequence)."""
        reset_points = set()
        for seed in range(4):
            program = build_program(
                get_benchmark("fluidanimate"), scale="test", racy=False, seed=0
            )
            _, rollover = run_with_layout(program, NARROW, seed=seed)
            reset_points.add(tuple(e.sync_index for e in rollover.events))
        assert len(reset_points) == 1

    def test_oracles_silent_across_resets(self):
        tracker = SfrTracker()
        isolation = IsolationOracle(tracker)
        atomicity = WriteAtomicityOracle(tracker)
        program = build_program(
            get_benchmark("radiosity"), scale="test", racy=False, seed=1
        )
        result, rollover = run_with_layout(
            program, NARROW, seed=2, extra=[tracker, isolation, atomicity]
        )
        assert rollover.count >= 1
        assert result.race is None
        assert isolation.violations == []
        assert atomicity.violations == []


class TestRolloverOnRandomPrograms:
    @settings(max_examples=25, deadline=None)
    @given(pseed=st.integers(min_value=0, max_value=5000))
    def test_race_free_random_programs_never_raise_under_narrow_clock(
        self, pseed
    ):
        program, _ = make_random_program(
            pseed, n_threads=3, ops_per_thread=14, race_probability=0.0
        )
        result, _ = run_with_layout(program, NARROW, seed=0)
        assert result.race is None

    @settings(max_examples=25, deadline=None)
    @given(
        pseed=st.integers(min_value=0, max_value=5000),
        sseed=st.integers(min_value=0, max_value=100),
    )
    def test_narrow_clock_never_invents_exceptions(self, pseed, sseed):
        """If the narrow-clock run raises, the wide-clock run of the same
        program on the same schedule raises too (resets only *lose*
        information)."""
        program, _ = make_random_program(
            pseed, n_threads=3, ops_per_thread=12, race_probability=0.5
        )
        narrow_result, _ = run_with_layout(program, NARROW, seed=sseed)
        program2, _ = make_random_program(
            pseed, n_threads=3, ops_per_thread=12, race_probability=0.5
        )
        wide_result, _ = run_with_layout(program2, DEFAULT_LAYOUT, seed=sseed)
        if narrow_result.race is not None:
            assert wide_result.race is not None
