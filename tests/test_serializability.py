"""Tests demonstrating the Section-7 positioning: region serializability
is strictly stronger than CLEAN's SFR isolation + write-atomicity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clean import CleanMonitor
from repro.core import CleanDetector
from repro.runtime import (
    Compute,
    IsolationOracle,
    Join,
    Program,
    RandomPolicy,
    Read,
    ScriptedPolicy,
    SfrTracker,
    Spawn,
    Write,
    WriteAtomicityOracle,
)
from repro.runtime.serializability import RegionSerializabilityOracle
from repro.workloads.randprog import make_random_program


def run_with_rs_oracle(program, policy, with_clean=True):
    tracker = SfrTracker()
    rs = RegionSerializabilityOracle(tracker)
    monitors = [tracker, rs]
    if with_clean:
        monitors.append(CleanMonitor(detector=CleanDetector(max_threads=8)))
    result = program.run(policy=policy, monitors=monitors, max_threads=8)
    return result, rs, tracker


def war_cycle_program():
    """Two SFRs that read each other's variable then write their own:
    with both reads first, both races resolve as WAR — CLEAN completes,
    SFR isolation and write-atomicity hold, but no serial region order
    explains the outcome (each region read the *old* value of a variable
    the other region wrote)."""

    def t1(ctx, x, y):
        seen = yield Read(x, 4)
        yield Compute(1)
        yield Write(y, 4, 100 + seen)
        return seen

    def t2(ctx, x, y):
        seen = yield Read(y, 4)
        yield Compute(1)
        yield Write(x, 4, 200 + seen)
        return seen

    def main(ctx):
        x = ctx.alloc(4)
        y = ctx.alloc(4)
        a = yield Spawn(t1, (x, y))
        b = yield Spawn(t2, (x, y))
        ra = yield Join(a)
        rb = yield Join(b)
        return (ra, rb)

    return Program(main)


class TestTheGap:
    def test_war_cycle_completes_under_clean_but_is_not_rs(self):
        """The heart of the §7 claim.  Schedule: t1 reads x, t2 reads y,
        t1 writes y, t2 writes x — every conflict resolves as WAR."""
        policy = ScriptedPolicy([0, 0, 0, 1, 1, 2, 2, 1, 2, 0, 0])
        result, rs, _ = run_with_rs_oracle(war_cycle_program(), policy)
        assert result.race is None, "both races resolve as WAR: CLEAN allows"
        assert result.thread_results[0] == (0, 0), "both read the old values"
        assert not rs.serializable, "yet no serial region order explains it"
        cycle = rs.find_cycle()
        assert cycle is not None and len(cycle) >= 2

    def test_same_execution_has_clean_semantics(self):
        """The non-RS execution still satisfies CLEAN's guarantees:
        the independent oracles find no isolation or atomicity violation."""
        tracker = SfrTracker()
        isolation = IsolationOracle(tracker)
        atomicity = WriteAtomicityOracle(tracker)
        rs = RegionSerializabilityOracle(tracker)
        policy = ScriptedPolicy([0, 0, 0, 1, 1, 2, 2, 1, 2, 0, 0])
        result = war_cycle_program().run(
            policy=policy,
            monitors=[
                tracker, isolation, atomicity, rs,
                CleanMonitor(detector=CleanDetector(max_threads=8)),
            ],
            max_threads=8,
        )
        assert result.race is None
        assert isolation.violations == []
        assert atomicity.violations == []
        assert not rs.serializable

    def test_serialized_variant_of_same_program_is_rs(self):
        """When the program *orders* the two regions (join between the
        spawns), the same bodies are race-free and region-serializable —
        the interleaving was the whole problem."""

        def t1(ctx, x, y):
            seen = yield Read(x, 4)
            yield Write(y, 4, 100 + seen)
            return seen

        def t2(ctx, x, y):
            seen = yield Read(y, 4)
            yield Write(x, 4, 200 + seen)
            return seen

        def main(ctx):
            x = ctx.alloc(4)
            y = ctx.alloc(4)
            a = yield Spawn(t1, (x, y))
            ra = yield Join(a)
            b = yield Spawn(t2, (x, y))
            rb = yield Join(b)
            return (ra, rb)

        result, rs, _ = run_with_rs_oracle(Program(main), None)
        assert result.race is None
        assert result.thread_results[0] == (0, 100)  # t2 saw t1's write
        assert rs.serializable


class TestRaceFreeIsAlwaysRs:
    @settings(max_examples=40, deadline=None)
    @given(
        pseed=st.integers(min_value=0, max_value=5000),
        sseed=st.integers(min_value=0, max_value=1000),
    )
    def test_race_free_random_programs_are_rs(self, pseed, sseed):
        """Conflicts of race-free programs follow happens-before, which is
        acyclic — so every schedule is region-serializable."""
        program, _ = make_random_program(
            pseed, n_threads=3, ops_per_thread=10, race_probability=0.0
        )
        result, rs, _ = run_with_rs_oracle(program, RandomPolicy(sseed))
        assert result.race is None
        assert rs.serializable, rs.find_cycle()

    @settings(max_examples=30, deadline=None)
    @given(
        pseed=st.integers(min_value=0, max_value=5000),
        sseed=st.integers(min_value=0, max_value=1000),
    )
    def test_completed_racy_runs_may_or_may_not_be_rs(self, pseed, sseed):
        """Sanity: the oracle runs without error on racy programs too;
        completed runs may legitimately be non-RS (the gap)."""
        program, _ = make_random_program(
            pseed, n_threads=3, ops_per_thread=10, race_probability=0.6
        )
        result, rs, _ = run_with_rs_oracle(program, RandomPolicy(sseed))
        # no assertion on rs.serializable: both outcomes are legal
        rs.find_cycle()


class TestOracleMechanics:
    def test_single_region_never_conflicts_with_itself(self):
        def main(ctx):
            addr = ctx.alloc(4)
            yield Write(addr, 4, 1)
            yield Read(addr, 4)
            yield Write(addr, 4, 2)

        result, rs, _ = run_with_rs_oracle(Program(main), None, with_clean=False)
        assert rs.edges == set()
        assert rs.serializable

    def test_write_write_edge_direction(self):
        def writer(ctx, addr, value):
            yield Write(addr, 4, value)

        def main(ctx):
            addr = ctx.alloc(4)
            a = yield Spawn(writer, (addr, 1))
            b = yield Spawn(writer, (addr, 2))
            yield Join(a)
            yield Join(b)

        policy = ScriptedPolicy([0, 0, 0, 1, 2])
        result, rs, _ = run_with_rs_oracle(Program(main), policy, with_clean=False)
        # thread 1 wrote first: edge (1, *) -> (2, *)
        assert any(e.earlier[0] == 1 and e.later[0] == 2 for e in rs.edge_witnesses)

    def test_witnesses_for_cycle(self):
        policy = ScriptedPolicy([0, 0, 0, 1, 1, 2, 2, 1, 2, 0, 0])
        _, rs, _ = run_with_rs_oracle(war_cycle_program(), policy)
        cycle = rs.find_cycle()
        witnesses = rs.witnesses_for(cycle)
        assert len(witnesses) >= 2
