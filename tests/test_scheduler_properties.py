"""Property tests for the cooperative scheduler's synchronization
semantics, over randomly generated sync-heavy programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import DeadlockError
from repro.determinism import KendoGate
from repro.runtime import (
    Acquire,
    Barrier,
    BarrierWait,
    Compute,
    ExecutionMonitor,
    Join,
    Lock,
    Output,
    Program,
    RandomPolicy,
    Read,
    Release,
    Semaphore,
    SemPost,
    SemWait,
    Spawn,
    Write,
)


class SyncInvariantMonitor(ExecutionMonitor):
    """Checks structural synchronization invariants as they happen."""

    def __init__(self):
        self.errors = []
        self._held = {}
        self._sem_balance = {}

    def on_acquire(self, tid, lock):
        holder = self._held.get(lock.name)
        if holder is not None:
            self.errors.append(
                f"lock {lock.name} acquired by {tid} while held by {holder}"
            )
        self._held[lock.name] = tid

    def on_release(self, tid, lock):
        if self._held.get(lock.name) != tid:
            self.errors.append(
                f"lock {lock.name} released by {tid}, holder was "
                f"{self._held.get(lock.name)}"
            )
        self._held[lock.name] = None

    def on_sem_wait(self, tid, sem):
        balance = self._sem_balance.setdefault(sem.name, 0)
        self._sem_balance[sem.name] = balance - 1

    def on_sem_post(self, tid, sem):
        self._sem_balance[sem.name] = self._sem_balance.get(sem.name, 0) + 1

    def check_sem_floor(self, initial_values):
        for name, balance in self._sem_balance.items():
            if balance + initial_values.get(name, 0) < 0:
                self.errors.append(f"semaphore {name} went negative")


def producer_consumer_program(n_producers, n_consumers, items_each):
    """Producers push tokens through a semaphore; consumers pop them.

    Race-free by construction: each producer writes only its own cell
    (consumers tally token counts, not payload), so the only shared
    state is the semaphore itself.
    """
    sem = Semaphore(0, "tokens")

    def producer(ctx, cell):
        for i in range(items_each):
            yield Compute(1)
            yield Write(cell, 4, i)
            yield SemPost(sem)

    def consumer(ctx, quota):
        taken = 0
        for _ in range(quota):
            yield SemWait(sem)
            taken += 1
        yield Output(taken)
        return taken

    total_items = n_producers * items_each
    per_consumer = total_items // n_consumers

    def main(ctx):
        kids = []
        for _ in range(n_producers):
            cell = ctx.alloc(4)  # one private-to-producer cell each
            kids.append((yield Spawn(producer, (cell,))))
        for _ in range(n_consumers):
            kids.append((yield Spawn(consumer, (per_consumer,))))
        for kid in kids:
            yield Join(kid)
        return sem.value

    return Program(main), sem


class TestSemaphoreInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        producers=st.integers(min_value=1, max_value=3),
        items=st.integers(min_value=1, max_value=4),
    )
    def test_never_negative_and_conserved(self, seed, producers, items):
        consumers = producers  # per_consumer divides evenly
        program, sem = producer_consumer_program(producers, consumers, items)
        monitor = SyncInvariantMonitor()
        result = program.run(
            policy=RandomPolicy(seed), monitors=[monitor], max_threads=16
        )
        monitor.check_sem_floor({"tokens": 0})
        assert monitor.errors == []
        # every token posted was consumed
        assert result.thread_results[0] == 0


class TestLockInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        threads=st.integers(min_value=2, max_value=4),
        sections=st.integers(min_value=1, max_value=4),
    )
    def test_mutual_exclusion_always(self, seed, threads, sections):
        lock = Lock("m")

        def worker(ctx, addr):
            for _ in range(sections):
                yield Acquire(lock)
                value = yield Read(addr, 4)
                yield Compute(2)
                yield Write(addr, 4, value + 1)
                yield Release(lock)

        def main(ctx):
            addr = ctx.alloc(4)
            kids = []
            for _ in range(threads):
                kids.append((yield Spawn(worker, (addr,))))
            for kid in kids:
                yield Join(kid)
            return (yield Read(addr, 4))

        monitor = SyncInvariantMonitor()
        result = program = Program(main).run(
            policy=RandomPolicy(seed), monitors=[monitor], max_threads=16
        )
        assert monitor.errors == []
        assert result.thread_results[0] == threads * sections


class TestBarrierInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        parties=st.integers(min_value=2, max_value=4),
        rounds=st.integers(min_value=1, max_value=4),
    )
    def test_generations_count_rounds(self, seed, parties, rounds):
        barrier = Barrier(parties, "b")
        phase_log = []

        def worker(ctx, index):
            for round_no in range(rounds):
                yield Compute(index + 1)
                phase_log.append((round_no, index, "arrive"))
                yield BarrierWait(barrier)
                phase_log.append((round_no, index, "depart"))

        def main(ctx):
            kids = []
            for index in range(parties):
                kids.append((yield Spawn(worker, (index,))))
            for kid in kids:
                yield Join(kid)

        Program(main).run(policy=RandomPolicy(seed), max_threads=16)
        assert barrier.generation == rounds
        # No departure of round N precedes an arrival of round N.
        for round_no in range(rounds):
            arrivals = [
                i for i, e in enumerate(phase_log)
                if e[0] == round_no and e[2] == "arrive"
            ]
            departures = [
                i for i, e in enumerate(phase_log)
                if e[0] == round_no and e[2] == "depart"
            ]
            assert max(arrivals) < min(departures)


class TestKendoWithAllPrimitives:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_producer_consumer_deterministic_under_kendo(self, seed):
        fingerprints = set()
        for schedule_seed in (seed, seed + 1, seed + 2):
            program, _ = producer_consumer_program(2, 2, 3)
            result = program.run(
                policy=RandomPolicy(schedule_seed),
                monitors=[KendoGate()],
                max_threads=16,
            )
            fingerprints.add(result.fingerprint())
        assert len(fingerprints) == 1
